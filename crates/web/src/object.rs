//! Web objects and their server-side service behaviour.

use core::fmt;
use h2priv_netsim::rng::SimRng;
use h2priv_netsim::time::SimDuration;
use h2priv_util::impl_to_json;

/// Identifies an object within one [`crate::Site`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl_to_json!(newtype ObjectId);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Object media type (affects nothing but labels and default profiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaType {
    /// HTML documents.
    Html,
    /// JavaScript.
    Js,
    /// Stylesheets.
    Css,
    /// Images.
    Image,
    /// JSON API responses.
    Json,
    /// Web fonts.
    Font,
}

impl_to_json!(
    enum MediaType {
        Html,
        Js,
        Css,
        Image,
        Json,
        Font,
    }
);

/// How the simulated server produces an object's bytes.
///
/// A worker thread waits `first_byte` (uniform in the configured range —
/// backend latency for dynamic content, disk/cache for static), then
/// emits the response as `chunk_size`-byte DATA chunks spread evenly over
/// an *emission window* drawn from the `emission` range. These timings
/// are what create (or destroy) the transmission overlap that HTTP/2
/// multiplexing exposes: responses whose emission windows overlap get
/// interleaved by the connection's round-robin frame scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceProfile {
    /// Minimum time-to-first-byte.
    pub first_byte_min: SimDuration,
    /// Maximum time-to-first-byte.
    pub first_byte_max: SimDuration,
    /// Minimum emission window (first to last chunk).
    pub emission_min: SimDuration,
    /// Maximum emission window.
    pub emission_max: SimDuration,
    /// DATA chunk size in bytes.
    pub chunk_size: u32,
}

impl_to_json!(struct ServiceProfile {
    first_byte_min, first_byte_max, emission_min, emission_max, chunk_size,
});

impl ServiceProfile {
    /// Dynamically generated HTML (slow, highly variable first byte;
    /// paced generation) — the profile of the isidewith survey-result
    /// page. The wide first-byte range is what makes the page *sometimes*
    /// miss the embedded-asset burst and transmit serialized by chance
    /// (the paper's 32 % baseline, Table I row 1).
    pub fn dynamic_html() -> ServiceProfile {
        ServiceProfile {
            first_byte_min: SimDuration::from_millis(120),
            first_byte_max: SimDuration::from_millis(380),
            emission_min: SimDuration::from_millis(80),
            emission_max: SimDuration::from_millis(200),
            chunk_size: 2_048,
        }
    }

    /// Static asset served from cache/disk (fast first byte, quick
    /// chunk emission). Service times sit mostly below the attack's
    /// phase-3 pacing (80 ms), which is what lets the adversary's
    /// request spacing serialize transmissions — as on the paper's real
    /// target server.
    /// Static assets are emitted almost instantly once the first byte is
    /// ready (as on a real file server); wire-level interleaving of
    /// concurrent responses then comes from the connection's round-robin
    /// frame scheduler and TCP window dynamics, not from emission pacing.
    pub fn static_asset() -> ServiceProfile {
        ServiceProfile {
            first_byte_min: SimDuration::from_millis(5),
            first_byte_max: SimDuration::from_millis(15),
            emission_min: SimDuration::from_millis(15),
            emission_max: SimDuration::from_millis(40),
            chunk_size: 2_048,
        }
    }

    /// Backend API response (very slow first byte, slow generation).
    /// The quiz page's survey-submission call uses this profile; its
    /// long, variable transmission window is what usually blankets the
    /// result HTML at baseline (degree ≈98 %) yet sometimes ends early
    /// enough to leave it serialized.
    pub fn api_json() -> ServiceProfile {
        ServiceProfile {
            first_byte_min: SimDuration::from_millis(100),
            first_byte_max: SimDuration::from_millis(500),
            emission_min: SimDuration::from_millis(200),
            emission_max: SimDuration::from_millis(700),
            chunk_size: 2_048,
        }
    }

    /// Draws a first-byte delay.
    pub fn draw_first_byte(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_nanos(rng.range_u64(
            self.first_byte_min.as_nanos(),
            self.first_byte_max.as_nanos(),
        ))
    }

    /// Draws an emission window and returns the per-chunk interval for
    /// an object of `size` bytes.
    pub fn draw_chunk_interval(&self, rng: &mut SimRng, size: u64) -> SimDuration {
        let emission = SimDuration::from_nanos(
            rng.range_u64(self.emission_min.as_nanos(), self.emission_max.as_nanos()),
        );
        let chunks = size.div_ceil(self.chunk_size as u64).max(1);
        emission / chunks
    }

    /// Expected service duration for `size` bytes (midpoint estimate) —
    /// useful for choosing attack pacing.
    pub fn expected_duration(&self, _size: u64) -> SimDuration {
        let fb = (self.first_byte_min + self.first_byte_max) / 2;
        let em = (self.emission_min + self.emission_max) / 2;
        fb + em
    }
}

/// One addressable resource on a site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebObject {
    /// Object identifier (index into the site's inventory).
    pub id: ObjectId,
    /// Request path (e.g. `/results/2020.html`).
    pub path: String,
    /// Media type.
    pub media: MediaType,
    /// Response body size in bytes.
    pub size: u64,
    /// How the server produces it.
    pub service: ServiceProfile,
}

impl_to_json!(struct WebObject { id, path, media, size, service });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_stay_in_range() {
        let p = ServiceProfile::dynamic_html();
        let mut rng = SimRng::new(3);
        for _ in 0..200 {
            let fb = p.draw_first_byte(&mut rng);
            assert!(fb >= p.first_byte_min && fb <= p.first_byte_max);
            // Per-chunk interval times chunk count stays within the
            // emission window.
            let iv = p.draw_chunk_interval(&mut rng, 9_500);
            let chunks = 9_500u64.div_ceil(p.chunk_size as u64);
            let total = iv * chunks;
            assert!(total <= p.emission_max, "emission too long: {total}");
        }
    }

    #[test]
    fn emission_window_is_size_independent() {
        let p = ServiceProfile::static_asset();
        let mut rng = SimRng::new(4);
        // A large asset emits with proportionally tighter chunk spacing.
        let small = p.draw_chunk_interval(&mut rng, 4_000);
        let large = p.draw_chunk_interval(&mut rng, 64_000);
        assert!(large < small);
        let html = ServiceProfile::dynamic_html().expected_duration(9_500);
        assert!(
            html >= SimDuration::from_millis(200) && html <= SimDuration::from_millis(500),
            "unexpected html duration {html}"
        );
    }
}
