//! # h2priv-web
//!
//! Website and browser workload models for the `h2priv` reproduction of
//! *"Depending on HTTP/2 for Privacy? Good Luck!"* (DSN 2020).
//!
//! A [`site::Site`] is an inventory of [`object::WebObject`]s plus a
//! dependency-driven request plan: each object's GET is triggered at page
//! start, a fixed gap after another request, after the first response
//! bytes of a parent (preload scanning), or after a parent completes
//! (script execution). The `h2priv-h2` client walks this plan like a
//! browser.
//!
//! [`isidewith`] models the paper's target, `www.isidewith.com`: a
//! dynamic result HTML of ≈9500 bytes (the 6th object a client downloads)
//! with 47 embedded objects, 8 of which are political-party emblem images
//! of 5–16 KB requested in the survey-result order with the inter-request
//! gaps the paper measured (Table II).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod isidewith;
pub mod object;
pub mod site;
pub mod sites;

pub use isidewith::{IsideWith, Party, PARTY_IMAGE_SIZES};
pub use object::{MediaType, ObjectId, ServiceProfile, WebObject};
pub use site::{PlanStep, Site, Trigger};
