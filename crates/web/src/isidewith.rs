//! The paper's target website: a model of `www.isidewith.com`.
//!
//! Section V of the paper describes the survey-result page:
//!
//! * a dynamic result HTML of ≈9500 bytes — the **6th object** the client
//!   downloads (five objects of the quiz page precede it);
//! * 47 embedded objects (JS, CSS, images);
//! * among them **8 political-party emblem images of 5–16 KB**, requested
//!   by a result-page script in the order the parties appear in the
//!   user's survey result — the order the adversary wants to infer;
//! * the measured inter-request gaps of Table II (sub-millisecond within
//!   the image burst).
//!
//! [`IsideWith::generate`] builds one trial: the party order is a random
//! permutation (standing in for the paper's ~500 volunteers), everything
//! else is fixed.

use crate::object::{MediaType, ObjectId, ServiceProfile, WebObject};
use crate::site::{PlanStep, Site, Trigger};
use core::fmt;
use h2priv_netsim::rng::SimRng;
use h2priv_netsim::time::SimDuration;
use h2priv_util::impl_to_json;

/// The eight political parties whose emblem images appear on the result
/// page. The variant order defines the canonical image inventory order
/// (not the per-user result order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Party {
    /// Democratic Party.
    Democratic,
    /// Republican Party.
    Republican,
    /// Libertarian Party.
    Libertarian,
    /// Green Party.
    Green,
    /// Constitution Party.
    Constitution,
    /// American Solidarity Party.
    AmericanSolidarity,
    /// Reform Party.
    Reform,
    /// Socialist Party.
    Socialist,
}

impl_to_json!(
    enum Party {
        Democratic,
        Republican,
        Libertarian,
        Green,
        Constitution,
        AmericanSolidarity,
        Reform,
        Socialist,
    }
);

impl Party {
    /// All parties in canonical order.
    pub const ALL: [Party; 8] = [
        Party::Democratic,
        Party::Republican,
        Party::Libertarian,
        Party::Green,
        Party::Constitution,
        Party::AmericanSolidarity,
        Party::Reform,
        Party::Socialist,
    ];

    /// Canonical index of this party.
    pub fn index(self) -> usize {
        Party::ALL
            .iter()
            .position(|p| *p == self)
            .expect("party in ALL")
    }
}

impl fmt::Display for Party {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Party::Democratic => "democratic",
            Party::Republican => "republican",
            Party::Libertarian => "libertarian",
            Party::Green => "green",
            Party::Constitution => "constitution",
            Party::AmericanSolidarity => "american-solidarity",
            Party::Reform => "reform",
            Party::Socialist => "socialist",
        };
        write!(f, "{s}")
    }
}

/// Emblem image sizes in bytes, canonical party order. All within the
/// paper's 5–16 KB range and mutually separated by more than the
/// predictor's matching tolerance, like the real site's PNGs.
pub const PARTY_IMAGE_SIZES: [u64; 8] =
    [5_200, 6_350, 7_800, 10_200, 10_900, 12_300, 14_100, 15_850];

/// Size of the result HTML in bytes (paper: "an HTML file of size ≈9500
/// bytes").
pub const RESULT_HTML_SIZE: u64 = 9_500;

/// Number of embedded objects on the result page (paper: 47).
pub const EMBEDDED_OBJECT_COUNT: usize = 47;

/// Inventory ids of the fixed objects.
const QUIZ_PAGE_OBJECTS: u32 = 5; // the five objects downloaded before the HTML
/// Inventory id of the result HTML (6th object downloaded).
pub const HTML_ID: ObjectId = ObjectId(QUIZ_PAGE_OBJECTS);
const RESULTS_JS_ID: u32 = 6; // first embedded asset: the script that fetches the emblems
const EMBEDDED_PLAIN: u32 = 36; // embedded assets that are not emblems or tails
const FIRST_IMAGE_ID: u32 = 6 + EMBEDDED_PLAIN; // = 42
const TAIL_COUNT: u32 = 3;

/// Sizes for the 36 plain embedded assets (deterministic, realistic mix
/// of small CSS/JS/sprites up to a couple of larger bundles).
const EMBEDDED_SIZES: [u64; EMBEDDED_PLAIN as usize] = [
    18_400, 2_150, 3_800, 27_300, 1_950, 44_100, 6_800, 3_250, 58_700, 2_700, 8_900, 21_600, 4_450,
    1_800, 33_200, 7_350, 2_480, 16_750, 5_600, 12_850, 3_050, 48_300, 2_250, 8_600, 19_850, 4_120,
    36_400, 2_900, 7_050, 14_600, 3_550, 25_800, 1_850, 11_300, 4_700, 41_700,
];

/// Measured inter-request gaps within the image burst, Table II row 1
/// (`I2..I8` relative to the previous image request), in microseconds.
pub const IMAGE_BURST_GAPS_US: [u64; 7] = [400, 2_000, 300, 100, 300, 2_000, 500];

/// A generated isidewith trial: the site plus the ground truth the
/// adversary tries to infer.
#[derive(Debug, Clone)]
pub struct IsideWith {
    /// The site model (inventory + request plan for this trial's result
    /// order).
    pub site: Site,
    /// The result HTML object (always [`HTML_ID`]).
    pub html: ObjectId,
    /// The emblem-image objects in *request order* — i.e. the survey
    /// result order. `images[0]` is the user's best-matching party.
    pub images: [ObjectId; 8],
    /// The ground-truth party order (same order as `images`).
    pub result_order: [Party; 8],
}

impl IsideWith {
    /// Builds one trial with the party order drawn from `rng` (a uniform
    /// random permutation, standing in for a volunteer's survey result).
    pub fn generate(rng: &mut SimRng) -> IsideWith {
        let mut order = Party::ALL;
        // Fisher–Yates with the simulation RNG.
        for i in (1..order.len()).rev() {
            let j = rng.range_u64(0, i as u64) as usize;
            order.swap(i, j);
        }
        Self::with_result_order(order)
    }

    /// Builds a trial with a fixed party order (deterministic tests).
    pub fn with_result_order(result_order: [Party; 8]) -> IsideWith {
        let mut objects: Vec<WebObject> = Vec::new();
        let mut add = |path: String, media: MediaType, size: u64, service: ServiceProfile| {
            let id = ObjectId(objects.len() as u32);
            objects.push(WebObject {
                id,
                path,
                media,
                size,
                service,
            });
            id
        };

        // --- five quiz-page objects downloaded before the result HTML ---
        add(
            "/quiz".into(),
            MediaType::Html,
            13_400,
            ServiceProfile::dynamic_html(),
        );
        add(
            "/static/css/main.css".into(),
            MediaType::Css,
            31_200,
            ServiceProfile::static_asset(),
        );
        add(
            "/static/js/app.js".into(),
            MediaType::Js,
            84_000,
            ServiceProfile::static_asset(),
        );
        add(
            "/static/js/vendor.js".into(),
            MediaType::Js,
            148_000,
            ServiceProfile::static_asset(),
        );
        // The survey submission itself: a slow dynamic API call whose
        // long transmission usually overlaps the result HTML (the page
        // polls it while the user is redirected to the results).
        add(
            "/api/survey/submit".into(),
            MediaType::Json,
            48_300,
            ServiceProfile::api_json(),
        );

        // --- the object of interest: the survey-result HTML (6th) ---
        let html = add(
            "/results/2020".into(),
            MediaType::Html,
            RESULT_HTML_SIZE,
            ServiceProfile::dynamic_html(),
        );
        debug_assert_eq!(html, HTML_ID);

        // --- 36 plain embedded assets; the first is the results script ---
        add(
            "/static/js/results.js".into(),
            MediaType::Js,
            22_600,
            ServiceProfile::static_asset(),
        );
        for (i, size) in EMBEDDED_SIZES.iter().enumerate().skip(1) {
            let media = match i % 3 {
                0 => MediaType::Css,
                1 => MediaType::Js,
                _ => MediaType::Image,
            };
            let ext = match media {
                MediaType::Css => "css",
                MediaType::Js => "js",
                _ => "png",
            };
            add(
                format!("/static/asset{i:02}.{ext}"),
                media,
                *size,
                ServiceProfile::static_asset(),
            );
        }

        // --- the eight emblem images, canonical party order ---
        for (party, size) in Party::ALL.iter().zip(PARTY_IMAGE_SIZES) {
            add(
                format!("/static/img/emblem_{party}.png"),
                MediaType::Image,
                size,
                ServiceProfile::static_asset(),
            );
        }

        // --- three trailing beacons/analytics ---
        add(
            "/static/js/analytics.js".into(),
            MediaType::Js,
            8_700,
            ServiceProfile::static_asset(),
        );
        add(
            "/api/beacon".into(),
            MediaType::Json,
            2_100,
            ServiceProfile::api_json(),
        );
        add(
            "/static/img/footer.png".into(),
            MediaType::Image,
            6_600,
            ServiceProfile::static_asset(),
        );

        debug_assert_eq!(objects.len(), 6 + EMBEDDED_OBJECT_COUNT);

        // ---------------- request plan ----------------
        let ms = SimDuration::from_millis;
        let mut plan = vec![
            PlanStep {
                object: ObjectId(0),
                trigger: Trigger::AtStart {
                    gap: SimDuration::ZERO,
                },
            },
            PlanStep {
                object: ObjectId(1),
                trigger: Trigger::AfterFirstByte {
                    parent: ObjectId(0),
                    gap: ms(30),
                },
            },
            PlanStep {
                object: ObjectId(2),
                trigger: Trigger::AfterRequest {
                    prev: ObjectId(1),
                    gap: ms(480),
                },
            },
            PlanStep {
                object: ObjectId(3),
                trigger: Trigger::AfterRequest {
                    prev: ObjectId(2),
                    gap: ms(500),
                },
            },
            PlanStep {
                object: ObjectId(4),
                trigger: Trigger::AfterRequest {
                    prev: ObjectId(3),
                    gap: ms(520),
                },
            },
            // The user submits the survey: result HTML 500 ms after the
            // previous request (Table II).
            PlanStep {
                object: html,
                trigger: Trigger::AfterRequest {
                    prev: ObjectId(4),
                    gap: ms(500),
                },
            },
            // The preload scanner discovers the first embedded asset
            // shortly after the HTML's first bytes arrive (observed on
            // the wire as the next GET following the HTML's by a fraction
            // of a second — Table II measures 160 ms on the real site).
            // Parse/scheduling time varies a lot between runs, which is
            // what occasionally lets the HTML finish single-threaded
            // (the paper's 32 % baseline).
            PlanStep {
                object: ObjectId(RESULTS_JS_ID),
                trigger: Trigger::AfterFirstByte {
                    parent: html,
                    gap: ms(80),
                },
            },
        ];
        // Remaining plain assets: a pipeline burst after results.js.
        let asset_gaps_ms: [u64; 35] = [
            4, 9, 2, 14, 6, 3, 22, 5, 8, 2, 17, 4, 11, 3, 6, 28, 2, 9, 5, 13, 3, 7, 19, 2, 6, 4,
            10, 3, 8, 15, 2, 5, 12, 4, 7,
        ];
        for (i, gap) in asset_gaps_ms.iter().enumerate() {
            let id = ObjectId(RESULTS_JS_ID + 1 + i as u32);
            let prev = ObjectId(RESULTS_JS_ID + i as u32);
            plan.push(PlanStep {
                object: id,
                trigger: Trigger::AfterRequest {
                    prev,
                    gap: ms(*gap),
                },
            });
        }

        // The emblem burst: results.js execution fires the first image a
        // while after the script finished downloading (Table II measures
        // 780 ms between I1 and the request before it).
        let image_ids: Vec<ObjectId> = result_order
            .iter()
            .map(|p| ObjectId(FIRST_IMAGE_ID + p.index() as u32))
            .collect();
        plan.push(PlanStep {
            object: image_ids[0],
            trigger: Trigger::AfterComplete {
                parent: ObjectId(RESULTS_JS_ID),
                gap: ms(700),
            },
        });
        for (i, gap_us) in IMAGE_BURST_GAPS_US.iter().enumerate() {
            plan.push(PlanStep {
                object: image_ids[i + 1],
                trigger: Trigger::AfterRequest {
                    prev: image_ids[i],
                    gap: SimDuration::from_micros(*gap_us),
                },
            });
        }

        // Tails: 26 ms after the last image (Table II's T(next) for I8).
        let first_tail = ObjectId(FIRST_IMAGE_ID + 8);
        plan.push(PlanStep {
            object: first_tail,
            trigger: Trigger::AfterRequest {
                prev: image_ids[7],
                gap: ms(26),
            },
        });
        for i in 1..TAIL_COUNT {
            plan.push(PlanStep {
                object: ObjectId(first_tail.0 + i),
                trigger: Trigger::AfterRequest {
                    prev: ObjectId(first_tail.0 + i - 1),
                    gap: ms(60),
                },
            });
        }

        let site = Site::new("www.isidewith.com", objects, plan);
        IsideWith {
            site,
            html,
            images: image_ids.try_into().expect("eight images"),
            result_order,
        }
    }

    /// The adversary's pre-compiled image-size → party mapping (paper
    /// Section V: "our adversary has a pre-compiled list of image size to
    /// political party mapping").
    pub fn adversary_size_map() -> Vec<(Party, u64)> {
        Party::ALL.iter().copied().zip(PARTY_IMAGE_SIZES).collect()
    }

    /// The inventory object for a party's emblem image.
    pub fn image_of(&self, party: Party) -> ObjectId {
        ObjectId(FIRST_IMAGE_ID + party.index() as u32)
    }

    /// The nine objects of interest: the HTML plus the 8 images in
    /// request order (paper: "the adversary has 9 different objects of
    /// interest").
    pub fn objects_of_interest(&self) -> Vec<ObjectId> {
        let mut v = vec![self.html];
        v.extend_from_slice(&self.images);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_paper_counts() {
        let mut rng = SimRng::new(1);
        let iw = IsideWith::generate(&mut rng);
        assert_eq!(iw.site.len(), 6 + EMBEDDED_OBJECT_COUNT); // 53 objects
        assert_eq!(iw.site.object(iw.html).size, RESULT_HTML_SIZE);
        // HTML is the 6th request in the plan.
        assert_eq!(iw.site.plan_position(iw.html), Some(5));
        // Every image within 5–16 KB.
        for img in iw.images {
            let size = iw.site.object(img).size;
            assert!((5_000..=16_000).contains(&size), "image size {size}");
        }
    }

    #[test]
    fn image_sizes_are_separated_beyond_tolerance() {
        // Predictor tolerance is ±3%; adjacent sizes must differ by more.
        let mut sizes = PARTY_IMAGE_SIZES;
        sizes.sort_unstable();
        for w in sizes.windows(2) {
            assert!(w[1] as f64 > w[0] as f64 * 1.065, "sizes too close: {w:?}");
        }
        // And the HTML must not be confusable with any image.
        for s in sizes {
            let ratio = RESULT_HTML_SIZE as f64 / s as f64;
            assert!(
                !(0.97..=1.03).contains(&ratio),
                "HTML size collides with image size {s}"
            );
        }
    }

    #[test]
    fn result_order_is_a_permutation() {
        let mut rng = SimRng::new(42);
        let iw = IsideWith::generate(&mut rng);
        let mut seen = iw.result_order.to_vec();
        seen.sort_by_key(|p| p.index());
        assert_eq!(seen, Party::ALL.to_vec());
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let orders: Vec<_> = (0..16)
            .map(|s| {
                let mut rng = SimRng::new(s);
                IsideWith::generate(&mut rng).result_order
            })
            .collect();
        assert!(orders.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn images_in_plan_follow_result_order() {
        let order = [
            Party::Socialist,
            Party::Green,
            Party::Democratic,
            Party::Republican,
            Party::Libertarian,
            Party::Constitution,
            Party::AmericanSolidarity,
            Party::Reform,
        ];
        let iw = IsideWith::with_result_order(order);
        for (i, party) in order.iter().enumerate() {
            assert_eq!(iw.images[i], iw.image_of(*party));
        }
        // Plan positions of the images are consecutive and ordered.
        let positions: Vec<usize> = iw
            .images
            .iter()
            .map(|o| iw.site.plan_position(*o).unwrap())
            .collect();
        for w in positions.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn size_map_covers_all_parties() {
        let map = IsideWith::adversary_size_map();
        assert_eq!(map.len(), 8);
        let iw = IsideWith::with_result_order(Party::ALL);
        for (party, size) in map {
            assert_eq!(iw.site.object(iw.image_of(party)).size, size);
        }
    }

    #[test]
    fn objects_of_interest_are_nine() {
        let iw = IsideWith::with_result_order(Party::ALL);
        assert_eq!(iw.objects_of_interest().len(), 9);
    }
}
