//! Auxiliary synthetic sites used by examples, tests and the Fig. 1–3
//! scenario benches.

use crate::object::{MediaType, ObjectId, ServiceProfile, WebObject};
use crate::site::{PlanStep, Site, Trigger};
use h2priv_netsim::time::SimDuration;

/// A two-object site reproducing the paper's Fig. 1/2/3 setting: the
/// client requests `O1` and then `O2` a configurable `gap` later.
///
/// With `gap` ≈ 0 the server multiplexes the two objects (Fig. 1 case 2 /
/// Fig. 3); with `gap` larger than `O1`'s service time the transfer is
/// serial (Fig. 1 case 1 / Fig. 4 after the adversary's spacing).
pub fn two_object_site(o1_size: u64, o2_size: u64, gap: SimDuration) -> Site {
    let objects = vec![
        WebObject {
            id: ObjectId(0),
            path: "/o1".into(),
            media: MediaType::Image,
            size: o1_size,
            service: ServiceProfile::static_asset(),
        },
        WebObject {
            id: ObjectId(1),
            path: "/o2".into(),
            media: MediaType::Image,
            size: o2_size,
            service: ServiceProfile::static_asset(),
        },
    ];
    let plan = vec![
        PlanStep {
            object: ObjectId(0),
            trigger: Trigger::AtStart {
                gap: SimDuration::ZERO,
            },
        },
        PlanStep {
            object: ObjectId(1),
            trigger: Trigger::AfterRequest {
                prev: ObjectId(0),
                gap,
            },
        },
    ];
    Site::new("two-object-demo", objects, plan)
}

/// A small blog-like site (HTML + stylesheet + two images + a script),
/// used by the quickstart example and client tests.
pub fn blog_site() -> Site {
    let mk =
        |id: u32, path: &str, media: MediaType, size: u64, service: ServiceProfile| WebObject {
            id: ObjectId(id),
            path: path.into(),
            media,
            size,
            service,
        };
    let objects = vec![
        mk(
            0,
            "/index.html",
            MediaType::Html,
            14_200,
            ServiceProfile::dynamic_html(),
        ),
        mk(
            1,
            "/style.css",
            MediaType::Css,
            8_400,
            ServiceProfile::static_asset(),
        ),
        mk(
            2,
            "/hero.jpg",
            MediaType::Image,
            52_000,
            ServiceProfile::static_asset(),
        ),
        mk(
            3,
            "/post.jpg",
            MediaType::Image,
            23_500,
            ServiceProfile::static_asset(),
        ),
        mk(
            4,
            "/app.js",
            MediaType::Js,
            31_000,
            ServiceProfile::static_asset(),
        ),
    ];
    let ms = SimDuration::from_millis;
    let plan = vec![
        PlanStep {
            object: ObjectId(0),
            trigger: Trigger::AtStart {
                gap: SimDuration::ZERO,
            },
        },
        PlanStep {
            object: ObjectId(1),
            trigger: Trigger::AfterFirstByte {
                parent: ObjectId(0),
                gap: ms(10),
            },
        },
        PlanStep {
            object: ObjectId(2),
            trigger: Trigger::AfterRequest {
                prev: ObjectId(1),
                gap: ms(3),
            },
        },
        PlanStep {
            object: ObjectId(3),
            trigger: Trigger::AfterRequest {
                prev: ObjectId(2),
                gap: ms(2),
            },
        },
        PlanStep {
            object: ObjectId(4),
            trigger: Trigger::AfterRequest {
                prev: ObjectId(3),
                gap: ms(5),
            },
        },
    ];
    Site::new("blog.example", objects, plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_object_site_shape() {
        let s = two_object_site(9_500, 7_200, SimDuration::from_millis(100));
        assert_eq!(s.len(), 2);
        assert_eq!(s.object(ObjectId(0)).size, 9_500);
        match s.plan[1].trigger {
            Trigger::AfterRequest { gap, .. } => assert_eq!(gap, SimDuration::from_millis(100)),
            other => panic!("unexpected trigger {other:?}"),
        }
    }

    #[test]
    fn blog_site_is_well_formed() {
        let s = blog_site();
        assert_eq!(s.len(), 5);
        assert!(s.by_path("/index.html").is_some());
        assert_eq!(s.plan.len(), 5);
    }
}
