//! A minimal HPACK (RFC 7541) implementation: static table + literal
//! fields, no dynamic table, no Huffman coding.
//!
//! Real header compression only matters here because it determines the
//! *sizes* of request/response HEADERS records on the wire — the paper's
//! traffic monitor distinguishes GET-carrying records from HTTP/2 control
//! records purely by TLS record length. A stateless HPACK produces
//! realistic (slightly conservative) sizes while keeping the codec
//! exactly invertible.

use h2priv_util::bytes::{Bytes, BytesMut};

/// The subset of the RFC 7541 static table this codec uses. Index = 1 +
/// position in this slice (HPACK indices are 1-based).
const STATIC_TABLE: &[(&str, &str)] = &[
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
];

/// Largest continuation value (beyond the prefix limit) this codec's
/// decoder accepts: five 7-bit groups, i.e. `2^35 − 1`. The encoder
/// refuses anything larger so every encoded integer round-trips.
pub const MAX_INT_CONTINUATION: usize = (1usize << 35) - 1;

/// An integer too large for the bounded HPACK varint.
///
/// [`decode_int`] rejects continuations past five 7-bit groups as
/// corrupt, so an unbounded encoder would happily emit integers its own
/// decoder refuses — an encode-side error, not a silent truncation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntEncodeError {
    /// The value that did not fit.
    pub value: usize,
}

impl core::fmt::Display for IntEncodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "HPACK integer {} exceeds the bounded varint range",
            self.value
        )
    }
}

/// Encodes an HPACK integer with an `n`-bit prefix into `out`, with
/// `mask` providing the pattern bits above the prefix. Fails (writing
/// nothing) when the continuation would exceed what [`decode_int`]
/// accepts.
fn try_encode_int(
    out: &mut BytesMut,
    mask: u8,
    n: u8,
    mut value: usize,
) -> Result<(), IntEncodeError> {
    let limit = (1usize << n) - 1;
    if value < limit {
        out.put_u8(mask | value as u8);
        return Ok(());
    }
    if value - limit > MAX_INT_CONTINUATION {
        return Err(IntEncodeError { value });
    }
    out.put_u8(mask | limit as u8);
    value -= limit;
    while value >= 128 {
        out.put_u8((value % 128) as u8 | 0x80);
        value /= 128;
    }
    out.put_u8(value as u8);
    Ok(())
}

/// Infallible wrapper for call sites whose values are bounded by
/// construction (static-table indices, header string lengths).
fn encode_int(out: &mut BytesMut, mask: u8, n: u8, value: usize) {
    try_encode_int(out, mask, n, value).expect("HPACK integer within bounded varint range");
}

/// Decodes an HPACK integer with an `n`-bit prefix. Returns (value,
/// bytes consumed).
fn decode_int(buf: &[u8], n: u8) -> Option<(usize, usize)> {
    let limit = (1usize << n) - 1;
    let first = *buf.first()? as usize & limit;
    if first < limit {
        return Some((first, 1));
    }
    let mut value = limit;
    let mut shift = 0u32;
    for (i, b) in buf.iter().enumerate().skip(1) {
        value += ((*b & 0x7f) as usize) << shift;
        shift += 7;
        if b & 0x80 == 0 {
            return Some((value, i + 1));
        }
        if shift > 28 {
            return None; // absurd integer: corrupt block
        }
    }
    None
}

fn encode_string(out: &mut BytesMut, s: &str) {
    encode_int(out, 0x00, 7, s.len()); // H bit clear: raw bytes
    out.extend_from_slice(s.as_bytes());
}

fn decode_str(buf: &[u8]) -> Option<(&str, usize)> {
    let huffman = *buf.first()? & 0x80 != 0;
    if huffman {
        return None; // not produced by this encoder
    }
    let (len, used) = decode_int(buf, 7)?;
    let end = used + len;
    if buf.len() < end {
        return None;
    }
    let s = std::str::from_utf8(&buf[used..end]).ok()?;
    Some((s, end))
}

/// Decodes one field, borrowing literal strings from the block (static
/// table entries borrow `'static`). Returns ((name, value), bytes used).
fn decode_field(buf: &[u8]) -> Option<((&str, &str), usize)> {
    let b = *buf.first()?;
    if b & 0x80 != 0 {
        // Indexed field.
        let (idx, used) = decode_int(buf, 7)?;
        if idx == 0 || idx > STATIC_TABLE.len() {
            return None;
        }
        Some((STATIC_TABLE[idx - 1], used))
    } else if b & 0xf0 == 0x00 {
        // Literal without indexing.
        let (idx, mut used) = decode_int(buf, 4)?;
        let name = if idx == 0 {
            let (n, u) = decode_str(&buf[used..])?;
            used += u;
            n
        } else {
            if idx > STATIC_TABLE.len() {
                return None;
            }
            STATIC_TABLE[idx - 1].0
        };
        let (value, u) = decode_str(&buf[used..])?;
        used += u;
        Some(((name, value), used))
    } else {
        None // encodings we never produce
    }
}

fn find_exact(name: &str, value: &str) -> Option<usize> {
    STATIC_TABLE
        .iter()
        .position(|(n, v)| *n == name && *v == value)
        .map(|i| i + 1)
}

fn find_name(name: &str) -> Option<usize> {
    STATIC_TABLE
        .iter()
        .position(|(n, _)| *n == name)
        .map(|i| i + 1)
}

/// Encodes a header list into an HPACK block (stateless; never updates a
/// dynamic table).
pub fn encode(headers: &[(&str, &str)]) -> Bytes {
    // Over-estimate the block size (prefix bytes are at most a few per
    // field) so the whole build is a single allocation.
    let cap = headers.iter().map(|(n, v)| n.len() + v.len() + 6).sum();
    let mut out = BytesMut::with_capacity(cap);
    encode_into(&mut out, headers);
    out.freeze()
}

/// Appends the HPACK encoding of a header list to `out` — the zero-copy
/// core of [`encode`], for callers that embed the block in a larger
/// frame without an intermediate buffer.
pub fn encode_into(out: &mut BytesMut, headers: &[(&str, &str)]) {
    for (name, value) in headers {
        if let Some(idx) = find_exact(name, value) {
            // Indexed field: '1' + 7-bit index.
            encode_int(out, 0x80, 7, idx);
        } else if let Some(idx) = find_name(name) {
            // Literal without indexing, indexed name: '0000' + 4-bit index.
            encode_int(out, 0x00, 4, idx);
            encode_string(out, value);
        } else {
            // Literal without indexing, new name.
            out.put_u8(0x00);
            encode_string(out, name);
            encode_string(out, value);
        }
    }
}

/// Decodes an HPACK block produced by [`encode`].
///
/// Returns `None` on malformed input (including encodings this codec
/// never produces, e.g. dynamic-table references).
pub fn decode(block: &[u8]) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    let mut buf = block;
    while !buf.is_empty() {
        let ((name, value), used) = decode_field(buf)?;
        out.push((name.to_string(), value.to_string()));
        buf = &buf[used..];
    }
    Some(out)
}

/// A parsed GET request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `:authority` pseudo-header.
    pub authority: String,
    /// `:path` pseudo-header.
    pub path: String,
}

/// Encodes a Firefox-like GET request header block.
pub fn encode_request(authority: &str, path: &str) -> Bytes {
    let mut out = BytesMut::with_capacity(64 + authority.len() + path.len());
    encode_request_into(&mut out, authority, path);
    out.freeze()
}

/// Appends a Firefox-like GET request header block to `out`.
pub fn encode_request_into(out: &mut BytesMut, authority: &str, path: &str) {
    encode_into(
        out,
        &[
            (":method", "GET"),
            (":scheme", "https"),
            (":authority", authority),
            (":path", path),
            ("accept-encoding", "gzip, deflate"),
            (
                "user-agent",
                "Mozilla/5.0 (X11; Linux x86_64; rv:74.0) Gecko/20100101 Firefox/74.0",
            ),
        ],
    );
}

/// A parsed GET request whose strings borrow from the block — the
/// hot-path variant of [`decode_request`] (no per-header `String`s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRef<'a> {
    /// `:authority` pseudo-header.
    pub authority: &'a str,
    /// `:path` pseudo-header.
    pub path: &'a str,
}

/// Parses a request block produced by [`encode_request`] without
/// allocating. Like [`decode_request`], the whole block must decode
/// cleanly (a malformed trailing field rejects the request).
pub fn decode_request_ref(block: &[u8]) -> Option<RequestRef<'_>> {
    let (mut method, mut authority, mut path) = (None, None, None);
    let mut buf = block;
    while !buf.is_empty() {
        let ((name, value), used) = decode_field(buf)?;
        match name {
            ":method" => method = Some(value),
            ":authority" => authority = Some(value),
            ":path" => path = Some(value),
            _ => {}
        }
        buf = &buf[used..];
    }
    if method? != "GET" {
        return None;
    }
    Some(RequestRef {
        authority: authority?,
        path: path?,
    })
}

/// Parses a request block produced by [`encode_request`].
pub fn decode_request(block: &[u8]) -> Option<Request> {
    let req = decode_request_ref(block)?;
    Some(Request {
        authority: req.authority.to_string(),
        path: req.path.to_string(),
    })
}

/// Encodes a 200 response header block with a content length.
pub fn encode_response(content_length: u64, content_type: &str) -> Bytes {
    let mut out = BytesMut::with_capacity(64 + content_type.len());
    encode_response_into(&mut out, content_length, content_type);
    out.freeze()
}

/// Appends a 200 response header block to `out`. The content length is
/// formatted into a stack buffer, so the only allocations are `out`'s
/// own growth.
pub fn encode_response_into(out: &mut BytesMut, content_length: u64, content_type: &str) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut v = content_length;
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    let cl = std::str::from_utf8(&digits[i..]).expect("decimal digits are ASCII");
    encode_into(
        out,
        &[
            (":status", "200"),
            ("content-type", content_type),
            ("content-length", cl),
            ("server", "nginx/1.16.1"),
            ("cache-control", "no-cache"),
        ],
    );
}

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// `:status` code.
    pub status: u16,
    /// `content-length` if present.
    pub content_length: Option<u64>,
}

/// Parses a response block produced by [`encode_response`].
pub fn decode_response(block: &[u8]) -> Option<Response> {
    let headers = decode(block)?;
    let get = |k: &str| headers.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
    Some(Response {
        status: get(":status")?.parse().ok()?,
        content_length: get("content-length").and_then(|v| v.parse().ok()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_util::check::{self, Gen};
    use h2priv_util::prop_assert_eq;

    #[test]
    fn integer_codec_boundaries() {
        let mut b = BytesMut::new();
        encode_int(&mut b, 0x80, 7, 126);
        assert_eq!(&b[..], &[0x80 | 126]);
        let mut b = BytesMut::new();
        encode_int(&mut b, 0x80, 7, 127);
        assert_eq!(&b[..], &[0xff, 0x00]);
        let mut b = BytesMut::new();
        // 1337 with a 4-bit prefix: 15, then 1322 = 0x2a | 0x80, 0x0a.
        encode_int(&mut b, 0x00, 4, 1337);
        assert_eq!(&b[..], &[0x0f, 0xaa, 0x0a]);
        assert_eq!(decode_int(&[0x0f, 0xaa, 0x0a], 4), Some((1337, 3)));
        // RFC 7541 C.1.2 (5-bit prefix).
        let mut b = BytesMut::new();
        encode_int(&mut b, 0x00, 5, 1337);
        assert_eq!(&b[..], &[0x1f, 0x9a, 0x0a]);
    }

    #[test]
    fn request_roundtrip() {
        let block = encode_request("www.isidewith.com", "/results/2020");
        let req = decode_request(&block).expect("decodes");
        assert_eq!(req.authority, "www.isidewith.com");
        assert_eq!(req.path, "/results/2020");
        // Realistic GET size: comfortably bigger than control frames.
        assert!(
            block.len() > 60 && block.len() < 300,
            "block len {}",
            block.len()
        );
    }

    #[test]
    fn response_roundtrip() {
        let block = encode_response(9_500, "text/html");
        let resp = decode_response(&block).expect("decodes");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_length, Some(9_500));
    }

    #[test]
    fn exact_static_match_is_one_byte() {
        let block = encode(&[(":method", "GET")]);
        assert_eq!(block.len(), 1);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(&[0x40, 0xff]), None); // incremental indexing unsupported
        assert_eq!(decode(&[0x00, 0x85, 0x01]), None); // Huffman flag set
    }

    #[test]
    fn int_roundtrip() {
        check::run("int_roundtrip", 512, |g: &mut Gen| {
            let v = g.usize(0, 9_999_999);
            let n = g.u8(1, 7);
            let mut b = BytesMut::new();
            encode_int(&mut b, 0, n, v);
            prop_assert_eq!(decode_int(&b, n), Some((v, b.len())));
        });
    }

    #[test]
    fn int_roundtrip_at_power_of_two_boundaries() {
        // The narrowing-cast audit's boundary values: every one must
        // round-trip exactly at every prefix width, on both sides of
        // each power of two.
        check::run("int_boundaries", 64, |g: &mut Gen| {
            let n = g.u8(1, 7);
            for v in [
                (1usize << 16) - 1,
                1usize << 16,
                (1usize << 24) - 1,
                1usize << 24,
            ] {
                let mut b = BytesMut::new();
                encode_int(&mut b, 0, n, v);
                prop_assert_eq!(decode_int(&b, n), Some((v, b.len())));
            }
        });
    }

    #[test]
    fn int_encode_rejects_what_decode_rejects() {
        // The largest encodable value round-trips; one past it errors
        // out instead of emitting bytes the decoder calls corrupt.
        for n in 1..=7u8 {
            let limit = (1usize << n) - 1;
            let max = limit + MAX_INT_CONTINUATION;
            let mut b = BytesMut::new();
            try_encode_int(&mut b, 0, n, max).expect("max value encodes");
            assert_eq!(decode_int(&b, n), Some((max, b.len())));
            let mut b = BytesMut::new();
            assert_eq!(
                try_encode_int(&mut b, 0, n, max + 1),
                Err(IntEncodeError { value: max + 1 })
            );
            assert!(b.is_empty(), "failed encode must write nothing");
        }
    }

    #[test]
    fn header_roundtrip() {
        check::run("header_roundtrip", 512, |g: &mut Gen| {
            const PATH_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/._-";
            let path: String = (0..g.usize(1, 64))
                .map(|_| char::from(*g.choose(PATH_CHARS)))
                .collect();
            let val = g.ascii_string(48);
            let hs = vec![
                (":method", "GET"),
                (":path", path.as_str()),
                ("x-custom-header", val.as_str()),
            ];
            let block = encode(&hs);
            let dec = decode(&block).expect("roundtrip");
            let expect: Vec<(String, String)> = hs
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect();
            prop_assert_eq!(dec, expect);
        });
    }
}
