//! Endpoint behaviour configuration.

use h2priv_netsim::packet::HostAddr;
use h2priv_netsim::time::SimDuration;
use h2priv_tcp::TcpConfig;

/// How the server schedules concurrent responses onto the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxPolicy {
    /// Full HTTP/2 multiplexing: every request gets its own simulated
    /// worker thread, and queued frames drain round-robin across streams.
    /// This is the configuration the paper attacks.
    Concurrent,
    /// One response at a time, in request order — reproduces HTTP/1.1
    /// head-of-line behaviour (and is what the paper's adversary forces
    /// the server into).
    Serial,
}

/// Constant-rate output shaping (a BuFLO/Tamaraw-style link policy):
/// the server releases at most one DATA cell per tick, splitting larger
/// frames, and keeps emitting dummy cells while the connection is within
/// the hangover of real activity — flattening the rate signature the
/// attack's segmentation depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapingConfig {
    /// Gap between cell emissions.
    pub interval: SimDuration,
    /// DATA payload bytes per cell.
    pub cell: u32,
    /// Keep emitting dummy cells this long after the last real activity
    /// (GET arrival or real DATA emission), masking inter-object gaps.
    pub hangover: SimDuration,
}

impl Default for ShapingConfig {
    fn default() -> Self {
        ShapingConfig {
            interval: SimDuration::from_millis(2),
            cell: 2_048,
            hangover: SimDuration::from_millis(200),
        }
    }
}

/// Server-side configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Scheduling policy.
    pub mux: MuxPolicy,
    /// TCP parameters.
    pub tcp: TcpConfig,
    /// Own address (must match the topology).
    pub addr: HostAddr,
    /// The client's address (single-connection model).
    pub client_addr: HostAddr,
    /// Stop feeding frames into TCP while more than this many bytes are
    /// written but untransmitted. Keeping the TCP buffer shallow is what
    /// lets `RST_STREAM` actually cancel queued object segments (paper
    /// Section IV-D: "the server ... flushes the corresponding object
    /// segments from its queue").
    pub send_watermark: u64,
    /// Serve every received GET, including duplicates of an object
    /// already being served (the paper's observed behaviour under
    /// re-requested GETs, Fig. 4). Disabling deduplicates by object.
    pub serve_duplicates: bool,
    /// Server-push manifest: when a GET for the first object arrives,
    /// the listed children are pushed on server-initiated streams (the
    /// paper's Section VII suggestion — pushed objects have no GETs for
    /// the adversary to pace). Empty = push disabled.
    pub push_manifest: Vec<(h2priv_web::ObjectId, Vec<h2priv_web::ObjectId>)>,
    /// Pad every ApplicationData TLS record's plaintext up to a multiple
    /// of this block size (RFC 8467 style). 0 = no padding. The client
    /// must enable [`ClientConfig::strip_padding`] to parse the stream.
    pub pad_block: usize,
    /// Constant-rate output shaping. `None` = frames drain at line rate.
    pub shaping: Option<ShapingConfig>,
    /// Traffic splitting (H3/QUIC only): alternate response datagrams
    /// between the primary path and an untapped second path in
    /// deterministic bursts of this many datagrams. 0 = off. Requires a
    /// split topology
    /// ([`SplitPathTopology`](h2priv_netsim::topology::SplitPathTopology)).
    pub split_burst: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            mux: MuxPolicy::Concurrent,
            tcp: TcpConfig::default().with_iss(700_000),
            addr: HostAddr(2),
            client_addr: HostAddr(1),
            send_watermark: 32 * 1024,
            serve_duplicates: true,
            push_manifest: Vec::new(),
            pad_block: 0,
            shaping: None,
            split_burst: 0,
        }
    }
}

/// Client re-request behaviour (the browser retrying an unanswered GET on
/// a new stream).
#[derive(Debug, Clone, Copy)]
pub struct RerequestConfig {
    /// Master switch.
    pub enabled: bool,
    /// Base wait for the first response byte before retrying.
    pub timeout: SimDuration,
    /// Multiplier applied per attempt (and after a stream reset).
    pub backoff: f64,
    /// Maximum GET attempts per object before giving up (further recovery
    /// is left to the stall/reset path).
    pub max_attempts: u32,
}

impl Default for RerequestConfig {
    fn default() -> Self {
        RerequestConfig {
            enabled: true,
            timeout: SimDuration::from_millis(1_200),
            backoff: 2.0,
            max_attempts: 3,
        }
    }
}

/// Client stall/reset behaviour (RST_STREAM on a lossy channel).
#[derive(Debug, Clone, Copy)]
pub struct ResetConfig {
    /// No progress on an object for this long ⇒ RST all its streams.
    pub stall_timeout: SimDuration,
    /// Wait after the reset before re-requesting the object.
    pub backoff: SimDuration,
    /// After a reset, all re-request timeouts are scaled by this factor
    /// (the paper: "the client's TCP stack also increases the timeout for
    /// fast-retransmits" — modelled at the layer that owns our timers).
    pub post_reset_timeout_scale: f64,
    /// Give up on an object after this many resets.
    pub max_resets_per_object: u32,
}

impl Default for ResetConfig {
    fn default() -> Self {
        ResetConfig {
            stall_timeout: SimDuration::from_millis(4_500),
            backoff: SimDuration::from_millis(2_600),
            post_reset_timeout_scale: 2.0,
            max_resets_per_object: 3,
        }
    }
}

/// Client-side configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP parameters.
    pub tcp: TcpConfig,
    /// Own address (must match the topology).
    pub addr: HostAddr,
    /// The server's address.
    pub server_addr: HostAddr,
    /// `:authority` used in requests.
    pub authority: String,
    /// Multiplicative jitter (spread) applied to request-pipeline gaps,
    /// modelling natural browser timing variation.
    pub gap_jitter: f64,
    /// Multiplicative jitter (spread) applied to content-discovery gaps
    /// (preload scanning, script execution) — parse and execution times
    /// vary far more than request pipelining.
    pub discovery_jitter: f64,
    /// Re-request behaviour.
    pub rerequest: RerequestConfig,
    /// Stall/reset behaviour.
    pub reset: ResetConfig,
    /// Give HTML documents browser-style priority on recovery: their
    /// re-requests and post-reset re-issues use half the usual waits, so
    /// the navigation document is refetched before subresources.
    pub document_priority: bool,
    /// Connection-level receive window the client grants the server.
    pub conn_window: u64,
    /// Send a connection WINDOW_UPDATE after consuming this many bytes.
    pub window_update_threshold: u64,
    /// Strip RFC 8467-style record padding from the server's
    /// ApplicationData records (the server sealed with
    /// [`ServerConfig::pad_block`] > 0).
    pub strip_padding: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            tcp: TcpConfig::default().with_iss(41_000),
            addr: HostAddr(1),
            server_addr: HostAddr(2),
            authority: "www.isidewith.com".into(),
            gap_jitter: 0.15,
            discovery_jitter: 0.85,
            rerequest: RerequestConfig::default(),
            reset: ResetConfig::default(),
            document_priority: true,
            // Firefox grants a very large connection-level window
            // (~12.5 MB) precisely so that connection flow control never
            // throttles a page load.
            conn_window: 12 * 1024 * 1024,
            window_update_threshold: 256 * 1024,
            strip_padding: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = ServerConfig::default();
        assert_eq!(s.mux, MuxPolicy::Concurrent);
        assert!(s.serve_duplicates);
        let c = ClientConfig::default();
        assert!(c.rerequest.enabled);
        assert!(c.conn_window > c.window_update_threshold);
        assert!(c.reset.stall_timeout > c.rerequest.timeout);
    }
}
