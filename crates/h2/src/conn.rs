//! Connection-level machinery shared by both endpoints: the frame output
//! scheduler (round-robin across streams — the mechanism that interleaves
//! object segments on the wire) and connection-level flow control.

use crate::frame::Frame;
use crate::stream::StreamId;
use h2priv_tls::RecordTag;
use h2priv_util::fxhash::FxHashMap;
use h2priv_util::telemetry;
use std::collections::VecDeque;

/// RFC 7540 initial connection flow-control window.
pub const INITIAL_CONNECTION_WINDOW: u64 = 65_535;

/// A frame queued for transmission, with its ground-truth label.
#[derive(Debug, Clone)]
pub struct QueuedFrame {
    /// The frame.
    pub frame: Frame,
    /// Ground-truth tag recorded in the TLS wire map when sealed.
    pub tag: RecordTag,
}

/// Per-stream frame queues drained round-robin.
///
/// This is where HTTP/2 multiplexing becomes *wire* interleaving: when
/// several worker threads have queued DATA, one frame per stream is
/// released in rotation. It is also where `RST_STREAM` takes effect:
/// [`OutputScheduler::clear_stream`] drops everything still queued for a
/// stream (paper Section IV-D).
#[derive(Debug, Default)]
pub struct OutputScheduler {
    queues: FxHashMap<StreamId, VecDeque<QueuedFrame>>,
    /// Round-robin rotation of streams with queued frames.
    rotation: VecDeque<StreamId>,
    /// Running total of queued DATA payload bytes, maintained on
    /// enqueue/pop/clear so the send watermark check is O(1) — it runs
    /// on every packet and timer dispatch.
    queued_data: u64,
}

impl OutputScheduler {
    /// An empty scheduler.
    pub fn new() -> OutputScheduler {
        OutputScheduler::default()
    }

    /// Queues `frame` on its stream.
    pub fn enqueue(&mut self, frame: Frame, tag: RecordTag) {
        let stream = frame.stream_id();
        if let Frame::Data { len, .. } = frame {
            self.queued_data += len as u64;
        }
        let q = self.queues.entry(stream).or_default();
        if q.is_empty() && !self.rotation.contains(&stream) {
            self.rotation.push_back(stream);
        }
        q.push_back(QueuedFrame { frame, tag });
    }

    /// Removes every queued frame of `stream`; returns how many DATA
    /// payload bytes were flushed.
    pub fn clear_stream(&mut self, stream: StreamId) -> u64 {
        let mut flushed = 0;
        if let Some(q) = self.queues.remove(&stream) {
            for qf in q {
                if let Frame::Data { len, .. } = qf.frame {
                    flushed += len as u64;
                }
            }
        }
        self.queued_data -= flushed;
        self.rotation.retain(|s| *s != stream);
        flushed
    }

    /// Pops the next frame in round-robin order. DATA frames are only
    /// eligible if they fit in `conn_window` bytes of connection-level
    /// send window; control frames always pass. Returns `None` when
    /// nothing is eligible.
    pub fn pop_next(&mut self, conn_window: u64) -> Option<QueuedFrame> {
        let mut tried = 0;
        let total = self.rotation.len();
        let mut first_blocked: Option<(StreamId, u32)> = None;
        while tried < total {
            let stream = *self.rotation.front().expect("rotation non-empty");
            let q = self.queues.get_mut(&stream).expect("queue exists");
            let eligible = match q.front().expect("queue non-empty").frame {
                Frame::Data { len, .. } => {
                    if len as u64 <= conn_window {
                        true
                    } else {
                        if first_blocked.is_none() {
                            first_blocked = Some((stream, len));
                        }
                        false
                    }
                }
                _ => true,
            };
            if eligible {
                let qf = q.pop_front().expect("non-empty");
                if let Frame::Data { len, .. } = qf.frame {
                    self.queued_data -= len as u64;
                }
                self.rotation.pop_front();
                if q.is_empty() {
                    self.queues.remove(&stream);
                } else {
                    self.rotation.push_back(stream);
                }
                return Some(qf);
            }
            // Blocked by flow control: rotate and try the next stream.
            self.rotation.rotate_left(1);
            tried += 1;
        }
        if let Some((stream, len)) = first_blocked {
            // The whole rotation is DATA blocked behind the connection
            // window — the flow-control serialization the attack exploits.
            telemetry::emit("h2", "flow_blocked", |ev| {
                ev.stream = Some(stream.0 as u64);
                ev.fields.push(("frame_len", len.into()));
                ev.fields.push(("conn_window", conn_window.into()));
                ev.fields.push(("blocked_streams", total.into()));
            });
            telemetry::count("h2.flow_blocked", 1);
        }
        None
    }

    /// Pops like [`OutputScheduler::pop_next`], but DATA payloads are
    /// additionally capped at `cell` bytes: a larger frame at the front
    /// of its queue is split, the remainder staying at the front (so a
    /// shaping tick emits fixed-size cells regardless of how workers
    /// chunked the object). Control frames pass through unchanged.
    pub fn pop_next_shaped(&mut self, conn_window: u64, cell: u32) -> Option<QueuedFrame> {
        assert!(cell > 0, "shaping cell must be positive");
        let mut tried = 0;
        let total = self.rotation.len();
        while tried < total {
            let stream = *self.rotation.front().expect("rotation non-empty");
            let q = self.queues.get_mut(&stream).expect("queue exists");
            let front = q.front().expect("queue non-empty");
            if let Frame::Data {
                stream: ds,
                len,
                end_stream,
            } = front.frame
            {
                let take = len.min(cell);
                if take as u64 > conn_window {
                    self.rotation.rotate_left(1);
                    tried += 1;
                    continue;
                }
                let tag = front.tag;
                if len > cell {
                    // Split: emit one cell, leave the remainder queued.
                    q.front_mut().expect("queue non-empty").frame = Frame::Data {
                        stream: ds,
                        len: len - cell,
                        end_stream,
                    };
                    self.queued_data -= cell as u64;
                    self.rotation.pop_front();
                    self.rotation.push_back(stream);
                    return Some(QueuedFrame {
                        frame: Frame::Data {
                            stream: ds,
                            len: cell,
                            end_stream: false,
                        },
                        tag,
                    });
                }
            }
            // Whole frame fits in a cell (or is control): normal pop.
            let qf = q.pop_front().expect("non-empty");
            if let Frame::Data { len, .. } = qf.frame {
                self.queued_data -= len as u64;
            }
            self.rotation.pop_front();
            if q.is_empty() {
                self.queues.remove(&stream);
            } else {
                self.rotation.push_back(stream);
            }
            return Some(qf);
        }
        None
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Total queued DATA payload bytes (for tests and watermarks).
    pub fn queued_data_bytes(&self) -> u64 {
        self.queued_data
    }

    /// Streams currently holding queued frames.
    pub fn active_streams(&self) -> Vec<StreamId> {
        let mut v: Vec<StreamId> = self.queues.keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_tls::RecordTag;

    fn data(stream: u32, len: u32) -> Frame {
        Frame::Data {
            stream: StreamId(stream),
            len,
            end_stream: false,
        }
    }

    #[test]
    fn round_robin_alternates_streams() {
        let mut s = OutputScheduler::new();
        for i in 0..3 {
            s.enqueue(data(1, 100 + i), RecordTag::NONE);
            s.enqueue(data(3, 200 + i), RecordTag::NONE);
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop_next(u64::MAX))
            .map(|qf| qf.frame.stream_id().0)
            .collect();
        assert_eq!(order, vec![1, 3, 1, 3, 1, 3]);
        assert!(s.is_empty());
    }

    #[test]
    fn single_stream_drains_fifo() {
        let mut s = OutputScheduler::new();
        for len in [10, 20, 30] {
            s.enqueue(data(5, len), RecordTag::NONE);
        }
        let lens: Vec<u32> = std::iter::from_fn(|| s.pop_next(u64::MAX))
            .map(|qf| match qf.frame {
                Frame::Data { len, .. } => len,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(lens, vec![10, 20, 30]);
    }

    #[test]
    fn clear_stream_flushes_only_that_stream() {
        let mut s = OutputScheduler::new();
        s.enqueue(data(1, 1000), RecordTag::NONE);
        s.enqueue(data(3, 500), RecordTag::NONE);
        s.enqueue(data(3, 500), RecordTag::NONE);
        assert_eq!(s.clear_stream(StreamId(3)), 1000);
        let remaining: Vec<u32> = std::iter::from_fn(|| s.pop_next(u64::MAX))
            .map(|qf| qf.frame.stream_id().0)
            .collect();
        assert_eq!(remaining, vec![1]);
    }

    #[test]
    fn flow_control_blocks_data_but_not_control() {
        let mut s = OutputScheduler::new();
        s.enqueue(data(1, 5_000), RecordTag::NONE);
        s.enqueue(
            Frame::WindowUpdate {
                stream: StreamId(0),
                increment: 100,
            },
            RecordTag::NONE,
        );
        // Window too small for the DATA frame: the control frame on
        // stream 0 must still come out.
        let first = s.pop_next(1_000).expect("control frame eligible");
        assert!(matches!(first.frame, Frame::WindowUpdate { .. }));
        assert!(s.pop_next(1_000).is_none(), "DATA must stay blocked");
        let second = s.pop_next(5_000).expect("window now fits");
        assert!(matches!(second.frame, Frame::Data { .. }));
    }

    #[test]
    fn control_frames_mid_rotation_do_not_reset_fairness() {
        // Regression pin for round-robin rotation under connection-window
        // blocking: while DATA on streams 1 and 3 is blocked, control
        // frames (stream 0) passing mid-rotation must neither starve a
        // data stream nor reorder the blocked streams' rotation.
        let mut s = OutputScheduler::new();
        s.enqueue(data(1, 5_000), RecordTag::NONE);
        s.enqueue(data(3, 5_000), RecordTag::NONE);
        s.enqueue(data(1, 5_000), RecordTag::NONE);
        s.enqueue(data(3, 5_000), RecordTag::NONE);
        s.enqueue(Frame::Ping { ack: false }, RecordTag::NONE);
        s.enqueue(
            Frame::WindowUpdate {
                stream: StreamId(0),
                increment: 100,
            },
            RecordTag::NONE,
        );

        // Window too small for any DATA: the two control frames drain
        // first, in FIFO order, with a scan over the blocked streams
        // in between.
        let first = s.pop_next(1_000).expect("ping passes");
        assert!(matches!(first.frame, Frame::Ping { .. }));
        let second = s.pop_next(1_000).expect("window update passes");
        assert!(matches!(second.frame, Frame::WindowUpdate { .. }));
        assert!(s.pop_next(1_000).is_none(), "all DATA still blocked");

        // Window opens: stream 1 queued first, so it must come out
        // first — the control frames must not have rotated it away —
        // and strict alternation resumes.
        let order: Vec<u32> = std::iter::from_fn(|| s.pop_next(u64::MAX))
            .map(|qf| qf.frame.stream_id().0)
            .collect();
        assert_eq!(order, vec![1, 3, 1, 3]);
        assert!(s.is_empty());
    }

    #[test]
    fn partial_window_serves_only_fitting_streams_without_starvation() {
        // A window that fits stream 3's small frames but not stream 1's
        // large ones must keep serving stream 3 while stream 1 stays
        // queued (not dropped), and release stream 1 once it fits.
        let mut s = OutputScheduler::new();
        s.enqueue(data(1, 5_000), RecordTag::NONE);
        s.enqueue(data(3, 100), RecordTag::NONE);
        s.enqueue(data(3, 100), RecordTag::NONE);
        let a = s.pop_next(1_000).expect("small frame fits");
        assert_eq!(a.frame.stream_id().0, 3);
        let b = s.pop_next(1_000).expect("second small frame fits");
        assert_eq!(b.frame.stream_id().0, 3);
        assert!(s.pop_next(1_000).is_none());
        assert_eq!(s.queued_data_bytes(), 5_000, "blocked frame retained");
        let c = s.pop_next(5_000).expect("large frame fits now");
        assert_eq!(c.frame.stream_id().0, 1);
        assert!(s.is_empty());
    }

    #[test]
    fn shaped_pop_splits_large_frames_into_cells() {
        let mut s = OutputScheduler::new();
        s.enqueue(
            Frame::Data {
                stream: StreamId(1),
                len: 5_000,
                end_stream: true,
            },
            RecordTag::NONE,
        );
        let mut lens = Vec::new();
        let mut ends = Vec::new();
        while let Some(qf) = s.pop_next_shaped(u64::MAX, 2_048) {
            match qf.frame {
                Frame::Data {
                    len, end_stream, ..
                } => {
                    lens.push(len);
                    ends.push(end_stream);
                }
                _ => unreachable!(),
            }
        }
        assert_eq!(lens, vec![2_048, 2_048, 904]);
        // end_stream survives only on the final fragment.
        assert_eq!(ends, vec![false, false, true]);
        assert!(s.is_empty());
        assert_eq!(s.queued_data_bytes(), 0);
    }

    #[test]
    fn shaped_pop_respects_window_and_rotation() {
        let mut s = OutputScheduler::new();
        s.enqueue(data(1, 5_000), RecordTag::NONE);
        s.enqueue(data(3, 5_000), RecordTag::NONE);
        // A cell still larger than the window blocks.
        assert!(s.pop_next_shaped(100, 2_048).is_none());
        // Cells alternate across streams like the unshaped rotation.
        let order: Vec<u32> = std::iter::from_fn(|| s.pop_next_shaped(u64::MAX, 2_048))
            .map(|qf| qf.frame.stream_id().0)
            .collect();
        assert_eq!(order, vec![1, 3, 1, 3, 1, 3]);
        // Control frames pass a shaped pop untouched.
        s.enqueue(Frame::Ping { ack: false }, RecordTag::NONE);
        let qf = s.pop_next_shaped(0, 16).expect("control passes");
        assert!(matches!(qf.frame, Frame::Ping { .. }));
    }

    #[test]
    fn queued_data_bytes_counts_only_data() {
        let mut s = OutputScheduler::new();
        s.enqueue(data(1, 100), RecordTag::NONE);
        s.enqueue(Frame::Ping { ack: false }, RecordTag::NONE);
        s.enqueue(data(3, 50), RecordTag::NONE);
        assert_eq!(s.queued_data_bytes(), 150);
        assert_eq!(
            s.active_streams(),
            vec![StreamId(0), StreamId(1), StreamId(3)]
        );
    }
}
