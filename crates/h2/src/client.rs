//! The browser-like HTTP/2 client model.
//!
//! Walks a [`h2priv_web::Site`] request plan with dependency-triggered
//! GETs, then layers on the two recovery behaviours the paper's attack
//! manipulates:
//!
//! * **Re-requests** (Fig. 4): when a GET has seen neither response
//!   headers nor data within an adaptive timeout, the client re-issues it
//!   on a fresh stream. The server then serves multiple copies, which is
//!   the paper's "intensified multiplexing".
//! * **Stream reset** (Fig. 6): when an object makes no progress for a
//!   long stall window (a very lossy channel), the client sends
//!   `RST_STREAM` for its streams, backs off, scales all its timeouts up,
//!   and re-requests — giving the server a clean, quiet window in which
//!   the adversary observes a serialized transmission.

use crate::config::ClientConfig;
use crate::frame::{ErrorCode, Frame};
use crate::hpack;
use crate::stack::{handshake_sizes, Stack, TransportEvent};
use crate::stream::{StreamId, StreamIdAllocator};
use h2priv_netsim::link::LinkId;
use h2priv_netsim::node::{Ctx, Node, TimerId};
use h2priv_netsim::packet::{FlowId, Packet};
use h2priv_netsim::time::{SimDuration, SimTime};
use h2priv_tcp::{TcpConnection, TcpStats};
use h2priv_tls::{ContentType, OpenedRecord, RecordTag, TrafficClass, WireMap};
use h2priv_util::fxhash::FxHashMap;
use h2priv_web::{ObjectId, Site, Trigger};

use crate::server::{CLIENT_PORT, SERVER_PORT};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TlsPhase {
    Idle,
    AwaitServerFlight,
    Ready,
}

#[derive(Debug)]
enum TimerPurpose {
    TcpTick,
    IssueStep(usize),
    Rerequest(usize),
    StallCheck(ObjectId),
    ReissueAfterReset(ObjectId),
}

/// Outcome record for one GET attempt.
#[derive(Debug, Clone, Copy)]
pub struct RequestRecord {
    /// Requested object.
    pub object: ObjectId,
    /// Stream the GET used.
    pub stream: StreamId,
    /// 0 = first attempt for the object.
    pub attempt: u32,
    /// When the GET was written.
    pub issued_at: SimTime,
    /// When response HEADERS arrived.
    pub headers_at: Option<SimTime>,
    /// When the first DATA arrived.
    pub first_data_at: Option<SimTime>,
    /// When END_STREAM arrived.
    pub completed_at: Option<SimTime>,
    /// DATA bytes received on this stream.
    pub bytes: u64,
    /// Whether the client reset this stream.
    pub reset: bool,
}

/// Outcome record for one object.
#[derive(Debug, Clone, Copy)]
pub struct ObjectOutcome {
    /// The object.
    pub object: ObjectId,
    /// First GET time.
    pub requested_at: Option<SimTime>,
    /// First DATA byte time (any copy).
    pub first_byte_at: Option<SimTime>,
    /// Completion time (first copy to finish).
    pub completed_at: Option<SimTime>,
    /// GET attempts issued.
    pub attempts: u32,
    /// Stream resets performed for it.
    pub resets: u32,
}

/// Everything the client learned during a page load; the experiment
/// harness's main output on the client side.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// When the HTTP/2 layer became ready (page-load start).
    pub page_started_at: Option<SimTime>,
    /// When every planned object had completed.
    pub page_completed_at: Option<SimTime>,
    /// Per-GET records in issue order.
    pub requests: Vec<RequestRecord>,
    /// Per-object outcomes in inventory order.
    pub objects: Vec<ObjectOutcome>,
    /// App-layer re-requests issued (paper's "retransmission requests").
    pub h2_rerequests: u64,
    /// Object reset events (RST_STREAM bursts) performed.
    pub resets_sent: u64,
    /// Whether the TCP connection aborted ("broken connection").
    pub connection_broken: bool,
    /// Client-side TCP retransmission count.
    pub tcp_retransmits: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct ObjState {
    requested_at: Option<SimTime>,
    first_byte_at: Option<SimTime>,
    completed_at: Option<SimTime>,
    last_progress: Option<SimTime>,
    attempts: u32,
    resets: u32,
    stall_armed: bool,
    gave_up: bool,
}

/// The browser client as a netsim node.
#[derive(Debug)]
pub struct ClientNode {
    cfg: ClientConfig,
    site: Site,
    stack: Stack,
    tls: TlsPhase,
    alloc: StreamIdAllocator,
    step_scheduled: Vec<bool>,
    objects: Vec<ObjState>,
    requests: Vec<RequestRecord>,
    stream_map: FxHashMap<StreamId, usize>,
    timers: FxHashMap<TimerId, TimerPurpose>,
    consumed_since_update: u64,
    h2_rerequests: u64,
    resets_sent: u64,
    broken: bool,
    timeout_scale: f64,
    page_started_at: Option<SimTime>,
    page_completed_at: Option<SimTime>,
}

impl ClientNode {
    /// Creates a client that will load `site` once the simulation starts.
    pub fn new(site: Site, cfg: ClientConfig) -> ClientNode {
        let flow = FlowId {
            src: cfg.addr,
            dst: cfg.server_addr,
            sport: CLIENT_PORT,
            dport: SERVER_PORT,
        };
        let stack = Stack::with_tls_options(
            TcpConnection::client(flow, cfg.tcp.clone()),
            0,
            cfg.strip_padding,
        );
        let n_objects = site.len();
        let n_steps = site.plan.len();
        ClientNode {
            cfg,
            site,
            stack,
            tls: TlsPhase::Idle,
            alloc: StreamIdAllocator::client(),
            step_scheduled: vec![false; n_steps],
            objects: vec![ObjState::default(); n_objects],
            requests: Vec::new(),
            stream_map: FxHashMap::default(),
            timers: FxHashMap::default(),
            consumed_since_update: 0,
            h2_rerequests: 0,
            resets_sent: 0,
            broken: false,
            timeout_scale: 1.0,
            page_started_at: None,
            page_completed_at: None,
        }
    }

    /// Builds the post-run report.
    pub fn report(&self) -> ClientReport {
        ClientReport {
            page_started_at: self.page_started_at,
            page_completed_at: self.page_completed_at,
            requests: self.requests.clone(),
            objects: self
                .objects
                .iter()
                .enumerate()
                .map(|(i, o)| ObjectOutcome {
                    object: ObjectId(i as u32),
                    requested_at: o.requested_at,
                    first_byte_at: o.first_byte_at,
                    completed_at: o.completed_at,
                    attempts: o.attempts,
                    resets: o.resets,
                })
                .collect(),
            h2_rerequests: self.h2_rerequests,
            resets_sent: self.resets_sent,
            connection_broken: self.broken,
            tcp_retransmits: self.stack.tcp.stats().retransmits(),
        }
    }

    /// Final TCP statistics.
    pub fn tcp_stats(&self) -> &TcpStats {
        self.stack.tcp.stats()
    }

    /// A cheap forward-progress fingerprint for stall watchdogs: the
    /// tuple changes whenever the page load makes any application-level
    /// progress (DATA bytes received, an object or the page completing,
    /// or the connection breaking). Reading it mutates nothing.
    pub fn progress_probe(&self) -> (u64, u64, bool, bool) {
        let objects_done = self
            .objects
            .iter()
            .filter(|o| o.completed_at.is_some())
            .count() as u64;
        let data_bytes: u64 = self.requests.iter().map(|r| r.bytes).sum();
        (
            data_bytes,
            objects_done,
            self.page_completed_at.is_some(),
            self.broken,
        )
    }

    /// Ground-truth wire map of everything this client sent.
    pub fn wire_map(&self) -> &WireMap {
        self.stack.wire_map()
    }

    // ------------------------------------------------------------------

    fn obj(&mut self, id: ObjectId) -> &mut ObjState {
        &mut self.objects[id.0 as usize]
    }

    fn is_document(&self, id: ObjectId) -> bool {
        self.cfg.document_priority && self.site.object(id).media == h2priv_web::MediaType::Html
    }

    fn write_frame(&mut self, frame: Frame, tag: RecordTag) {
        let bytes = frame.encode().expect("frame within RFC 7540 payload limit");
        self.stack
            .write_record(ContentType::ApplicationData, &bytes, tag);
    }

    fn start_plan(&mut self, ctx: &mut Ctx<'_>) {
        self.page_started_at = Some(ctx.now());
        for i in 0..self.site.plan.len() {
            if let Trigger::AtStart { gap } = self.site.plan[i].trigger {
                self.schedule_step(ctx, i, gap);
            }
        }
    }

    fn schedule_step(&mut self, ctx: &mut Ctx<'_>, step: usize, gap: SimDuration) {
        if self.step_scheduled[step] {
            return;
        }
        self.step_scheduled[step] = true;
        // Discovery-triggered steps (parsing, script execution) carry far
        // more natural timing variance than pipelined requests.
        let spread = match self.site.plan[step].trigger {
            Trigger::AfterFirstByte { .. } | Trigger::AfterComplete { .. } => {
                self.cfg.discovery_jitter
            }
            _ => self.cfg.gap_jitter,
        };
        let jf = ctx.rng().jitter_factor(spread);
        let t = ctx.schedule(gap.mul_f64(jf));
        self.timers.insert(t, TimerPurpose::IssueStep(step));
    }

    /// Fires dependency triggers after `object` reached `milestone`.
    fn trigger_deps(&mut self, ctx: &mut Ctx<'_>, object: ObjectId, milestone: Milestone) {
        for i in 0..self.site.plan.len() {
            if self.step_scheduled[i] {
                continue;
            }
            let gap = match (self.site.plan[i].trigger, milestone) {
                (Trigger::AfterRequest { prev, gap }, Milestone::Requested) if prev == object => {
                    Some(gap)
                }
                (Trigger::AfterFirstByte { parent, gap }, Milestone::FirstByte)
                    if parent == object =>
                {
                    Some(gap)
                }
                (Trigger::AfterComplete { parent, gap }, Milestone::Completed)
                    if parent == object =>
                {
                    Some(gap)
                }
                _ => None,
            };
            if let Some(gap) = gap {
                self.schedule_step(ctx, i, gap);
            }
        }
    }

    fn issue_get(&mut self, ctx: &mut Ctx<'_>, object: ObjectId) {
        if self.broken || self.obj(object).gave_up {
            return;
        }
        let attempt = self.obj(object).attempts;
        self.obj(object).attempts += 1;
        let stream = self.alloc.next_id();
        let path = self.site.object(object).path.clone();
        let block = hpack::encode_request(&self.cfg.authority, &path);
        let req_idx = self.requests.len();
        self.requests.push(RequestRecord {
            object,
            stream,
            attempt,
            issued_at: ctx.now(),
            headers_at: None,
            first_data_at: None,
            completed_at: None,
            bytes: 0,
            reset: false,
        });
        self.stream_map.insert(stream, req_idx);
        self.write_frame(
            Frame::Headers {
                stream,
                block,
                end_stream: true,
            },
            RecordTag {
                stream_id: stream.0,
                object_id: object.0,
                copy: attempt as u16,
                class: TrafficClass::Request,
            },
        );
        let first = self.obj(object).requested_at.is_none();
        if first {
            self.obj(object).requested_at = Some(ctx.now());
        }
        // Arm the re-request watchdog (HTML documents retry faster when
        // document priority is on).
        if self.cfg.rerequest.enabled {
            let mut factor = self.cfg.rerequest.backoff.powi(attempt as i32) * self.timeout_scale;
            if self.is_document(object) {
                factor *= 0.5;
            }
            let t = ctx.schedule(self.cfg.rerequest.timeout.mul_f64(factor));
            self.timers.insert(t, TimerPurpose::Rerequest(req_idx));
        }
        // Arm the stall watchdog once per object.
        if !self.obj(object).stall_armed {
            self.obj(object).stall_armed = true;
            let t = ctx.schedule(self.cfg.reset.stall_timeout);
            self.timers.insert(t, TimerPurpose::StallCheck(object));
        }
        if first {
            self.trigger_deps(ctx, object, Milestone::Requested);
        }
    }

    fn handle_records(&mut self, ctx: &mut Ctx<'_>, records: Vec<OpenedRecord>) {
        for rec in records {
            match rec.content_type {
                ContentType::Handshake => {
                    if self.tls == TlsPhase::AwaitServerFlight {
                        // Server flight received: send Finished, then the
                        // HTTP/2 connection preface (SETTINGS + window).
                        self.stack.write_record(
                            ContentType::Handshake,
                            &Stack::opaque(handshake_sizes::CLIENT_FINISHED),
                            RecordTag::NONE,
                        );
                        self.tls = TlsPhase::Ready;
                        self.write_frame(
                            Frame::Settings {
                                ack: false,
                                params: vec![(0x4, 65_535), (0x5, 16_384)],
                            },
                            RecordTag::NONE,
                        );
                        let raise = self
                            .cfg
                            .conn_window
                            .saturating_sub(crate::conn::INITIAL_CONNECTION_WINDOW);
                        if raise > 0 {
                            self.write_frame(
                                Frame::WindowUpdate {
                                    stream: StreamId::CONNECTION,
                                    increment: raise as u32,
                                },
                                RecordTag::NONE,
                            );
                        }
                        self.start_plan(ctx);
                    }
                }
                ContentType::ApplicationData => {
                    let mut buf = &rec.plaintext[..];
                    while let Some((frame, used)) = Frame::decode(buf) {
                        self.handle_frame(ctx, frame);
                        buf = &buf[used..];
                    }
                }
                ContentType::ChangeCipherSpec | ContentType::Alert => {}
            }
        }
    }

    fn handle_frame(&mut self, ctx: &mut Ctx<'_>, frame: Frame) {
        match frame {
            Frame::Settings { ack: false, .. } => {
                self.write_frame(
                    Frame::Settings {
                        ack: true,
                        params: vec![],
                    },
                    RecordTag::NONE,
                );
            }
            Frame::Headers {
                stream,
                block,
                end_stream,
            } => {
                if let Some(&idx) = self.stream_map.get(&stream) {
                    let now = ctx.now();
                    if self.requests[idx].reset {
                        return; // stale response to a reset stream
                    }
                    self.requests[idx].headers_at = Some(now);
                    let object = self.requests[idx].object;
                    self.obj(object).last_progress = Some(now);
                    if let Some(resp) = hpack::decode_response(&block) {
                        debug_assert_eq!(resp.status, 200);
                    }
                    if end_stream {
                        self.complete_request(ctx, idx);
                    }
                }
            }
            Frame::Data {
                stream,
                len,
                end_stream,
            } => {
                self.grant_window(len);
                if let Some(&idx) = self.stream_map.get(&stream) {
                    if self.requests[idx].reset {
                        return; // bytes of a cancelled copy still in flight
                    }
                    let now = ctx.now();
                    self.requests[idx].bytes += len as u64;
                    let object = self.requests[idx].object;
                    if self.requests[idx].first_data_at.is_none() {
                        self.requests[idx].first_data_at = Some(now);
                    }
                    self.obj(object).last_progress = Some(now);
                    if self.obj(object).first_byte_at.is_none() {
                        self.obj(object).first_byte_at = Some(now);
                        self.trigger_deps(ctx, object, Milestone::FirstByte);
                    }
                    if end_stream {
                        self.complete_request(ctx, idx);
                    }
                }
            }
            Frame::PushPromise {
                promised, block, ..
            } => {
                self.handle_push_promise(ctx, promised, &block);
            }
            Frame::RstStream { stream, .. } => {
                if let Some(&idx) = self.stream_map.get(&stream) {
                    self.requests[idx].reset = true;
                }
            }
            Frame::Ping { ack: false } => {
                self.write_frame(Frame::Ping { ack: true }, RecordTag::NONE);
            }
            Frame::Settings { ack: true, .. }
            | Frame::Ping { ack: true }
            | Frame::Priority { .. }
            | Frame::GoAway { .. }
            | Frame::WindowUpdate { .. } => {}
        }
    }

    /// A PUSH_PROMISE reserves a server stream for an object the client
    /// would otherwise request: accept it, account its data like a
    /// response, and cancel the object's own pending plan step.
    fn handle_push_promise(&mut self, ctx: &mut Ctx<'_>, promised: StreamId, block: &[u8]) {
        let Some(req) = hpack::decode_request(block) else {
            return;
        };
        let Some(object) = self.site.by_path(&req.path).map(|o| o.id) else {
            return;
        };
        if self.obj(object).completed_at.is_some() {
            return; // already have it; a real client would RST the push
        }
        let req_idx = self.requests.len();
        let attempt = self.obj(object).attempts;
        self.requests.push(RequestRecord {
            object,
            stream: promised,
            attempt,
            issued_at: ctx.now(),
            headers_at: None,
            first_data_at: None,
            completed_at: None,
            bytes: 0,
            reset: false,
        });
        self.stream_map.insert(promised, req_idx);
        // Suppress the browser's own GET for this object: cancel unfired
        // plan steps and count the push as the object's first attempt so
        // an already-armed issue timer backs off.
        for (i, step) in self.site.plan.iter().enumerate() {
            if step.object == object {
                self.step_scheduled[i] = true;
            }
        }
        self.obj(object).attempts += 1;
        if self.obj(object).requested_at.is_none() {
            self.obj(object).requested_at = Some(ctx.now());
            self.trigger_deps(ctx, object, Milestone::Requested);
        }
        if !self.obj(object).stall_armed {
            self.obj(object).stall_armed = true;
            let t = ctx.schedule(self.cfg.reset.stall_timeout);
            self.timers.insert(t, TimerPurpose::StallCheck(object));
        }
    }

    fn grant_window(&mut self, len: u32) {
        self.consumed_since_update += len as u64;
        if self.consumed_since_update >= self.cfg.window_update_threshold {
            let inc = self.consumed_since_update as u32;
            self.consumed_since_update = 0;
            self.write_frame(
                Frame::WindowUpdate {
                    stream: StreamId::CONNECTION,
                    increment: inc,
                },
                RecordTag::NONE,
            );
        }
    }

    fn complete_request(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let now = ctx.now();
        self.requests[idx].completed_at = Some(now);
        let object = self.requests[idx].object;
        if self.obj(object).completed_at.is_none() {
            self.obj(object).completed_at = Some(now);
            self.trigger_deps(ctx, object, Milestone::Completed);
            self.check_page_complete(now);
        }
    }

    fn check_page_complete(&mut self, now: SimTime) {
        if self.page_completed_at.is_some() {
            return;
        }
        let all = self
            .site
            .plan
            .iter()
            .all(|s| self.objects[s.object.0 as usize].completed_at.is_some());
        if all {
            self.page_completed_at = Some(now);
        }
    }

    fn rerequest_check(&mut self, ctx: &mut Ctx<'_>, req_idx: usize) {
        let (object, stale) = {
            let r = &self.requests[req_idx];
            (
                r.object,
                r.headers_at.is_none() && r.first_data_at.is_none() && !r.reset,
            )
        };
        if !stale || self.obj(object).completed_at.is_some() || self.broken {
            return;
        }
        if self.obj(object).attempts < self.cfg.rerequest.max_attempts {
            self.h2_rerequests += 1;
            self.issue_get(ctx, object);
        }
    }

    fn stall_check(&mut self, ctx: &mut Ctx<'_>, object: ObjectId) {
        let now = ctx.now();
        let state = *self.obj(object);
        if state.completed_at.is_some() || state.gave_up || self.broken {
            self.obj(object).stall_armed = false;
            return;
        }
        let last = state.last_progress.or(state.requested_at).unwrap_or(now);
        let idle = now.saturating_since(last);
        if idle >= self.cfg.reset.stall_timeout {
            if state.resets >= self.cfg.reset.max_resets_per_object {
                self.obj(object).gave_up = true;
                self.obj(object).stall_armed = false;
                return;
            }
            // A badly lossy channel: the browser resets *all* ongoing
            // streams (paper Fig. 6 — "the client resets the streams"),
            // which flushes every queued object segment from the server,
            // then re-requests incomplete resources after a backoff. The
            // navigation document goes first (browser priority).
            let streams: Vec<(StreamId, ObjectId)> = self
                .requests
                .iter()
                .filter(|r| r.completed_at.is_none() && !r.reset)
                .map(|r| (r.stream, r.object))
                .collect();
            for (s, o) in &streams {
                self.write_frame(
                    Frame::RstStream {
                        stream: *s,
                        error: ErrorCode::Cancel,
                    },
                    RecordTag {
                        stream_id: s.0,
                        object_id: o.0,
                        copy: 0,
                        class: TrafficClass::Control,
                    },
                );
            }
            for r in self.requests.iter_mut() {
                if r.completed_at.is_none() {
                    r.reset = true;
                }
            }
            self.resets_sent += 1;
            // Paper: after the reset the client waits longer before
            // retrying anything.
            self.timeout_scale = self.cfg.reset.post_reset_timeout_scale;
            let incomplete: Vec<ObjectId> = (0..self.objects.len() as u32)
                .map(ObjectId)
                .filter(|o| {
                    let st = self.objects[o.0 as usize];
                    st.requested_at.is_some() && st.completed_at.is_none() && !st.gave_up
                })
                .collect();
            for o in incomplete {
                self.obj(o).resets += 1;
                self.obj(o).last_progress = Some(now);
                let backoff = if self.is_document(o) {
                    self.cfg.reset.backoff.mul_f64(0.3)
                } else {
                    self.cfg.reset.backoff
                };
                let t = ctx.schedule(backoff);
                self.timers.insert(t, TimerPurpose::ReissueAfterReset(o));
                let t = ctx.schedule(self.cfg.reset.stall_timeout + backoff);
                self.timers.insert(t, TimerPurpose::StallCheck(o));
            }
        } else {
            let t = ctx.schedule_at(last + self.cfg.reset.stall_timeout);
            self.timers.insert(t, TimerPurpose::StallCheck(object));
        }
    }

    fn after_activity(&mut self, ctx: &mut Ctx<'_>) {
        self.stack.pump(ctx);
        if let Some(t) = self.stack.timer_needs_rescheduling() {
            let timer = ctx.schedule_at(t);
            self.timers.insert(timer, TimerPurpose::TcpTick);
            self.stack.tcp_tick_at = Some(t);
        }
    }

    fn handle_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<TransportEvent>) {
        for ev in events {
            match ev {
                TransportEvent::Connected => {
                    if self.tls == TlsPhase::Idle {
                        self.stack.write_record(
                            ContentType::Handshake,
                            &Stack::opaque(handshake_sizes::CLIENT_HELLO),
                            RecordTag::NONE,
                        );
                        self.tls = TlsPhase::AwaitServerFlight;
                    }
                }
                TransportEvent::Aborted => {
                    self.broken = true;
                }
                TransportEvent::PeerFin | TransportEvent::Closed => {}
            }
        }
        let _ = ctx;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Milestone {
    Requested,
    FirstByte,
    Completed,
}

impl Node for ClientNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let egress = ctx.egress_links();
        assert_eq!(egress.len(), 1, "client expects exactly one egress link");
        self.stack.set_egress(egress[0]);
        self.stack.tcp.open(ctx.now());
        self.after_activity(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: LinkId, pkt: Packet) {
        let (records, events) = self.stack.on_packet(ctx.now(), &pkt);
        self.handle_events(ctx, events);
        self.handle_records(ctx, records);
        self.after_activity(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
        match self.timers.remove(&timer) {
            Some(TimerPurpose::TcpTick) => {
                self.stack.tcp_tick_at = None;
                let (records, events) = self.stack.on_tcp_timer(ctx.now());
                self.handle_events(ctx, events);
                self.handle_records(ctx, records);
            }
            Some(TimerPurpose::IssueStep(step)) => {
                let object = self.site.plan[step].object;
                // Only the plan's first GET for an object goes through
                // here; re-requests are issued by the watchdogs.
                if self.obj(object).attempts == 0 {
                    self.issue_get(ctx, object);
                }
            }
            Some(TimerPurpose::Rerequest(req_idx)) => {
                self.rerequest_check(ctx, req_idx);
            }
            Some(TimerPurpose::StallCheck(object)) => {
                self.stall_check(ctx, object);
            }
            Some(TimerPurpose::ReissueAfterReset(object))
                if self.obj(object).completed_at.is_none() && !self.obj(object).gave_up =>
            {
                self.issue_get(ctx, object);
            }
            Some(TimerPurpose::ReissueAfterReset(_)) | None => {}
        }
        self.after_activity(ctx);
    }
}
