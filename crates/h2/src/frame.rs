//! HTTP/2 frame types and their wire encoding (RFC 7540 §4).
//!
//! Every frame is `9-byte header + payload`. DATA payloads are synthetic
//! (zero bytes of the right length): the simulation cares about *sizes on
//! the wire*, not content. Everything else round-trips exactly.

use crate::stream::StreamId;
use core::fmt;
use h2priv_util::bytes::{Bytes, BytesMut};

/// Length of the fixed frame header.
pub const FRAME_HEADER_LEN: usize = 9;

/// Largest payload the 24-bit frame-header length field can carry
/// (RFC 7540 §4.1 — also the cap on SETTINGS_MAX_FRAME_SIZE, §6.5.2).
pub const MAX_FRAME_PAYLOAD: usize = (1 << 24) - 1;

/// A frame's payload exceeded the 24-bit wire length field.
///
/// Before this error existed the encoder cast `payload.len()` to `u32`
/// and shifted the low 24 bits into the header — a ≥ 16 MiB payload
/// would silently truncate on the wire and desynchronize the peer's
/// framing. Oversized frames are a caller bug here (the model never
/// builds them), but they must fail loudly, not corrupt the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameEncodeError {
    /// The offending payload length in bytes.
    pub payload_len: usize,
}

impl fmt::Display for FrameEncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frame payload of {} bytes exceeds the 24-bit length field (max {MAX_FRAME_PAYLOAD})",
            self.payload_len
        )
    }
}

/// Frame type codes (RFC 7540 §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameType {
    /// DATA(0x0)
    Data = 0x0,
    /// HEADERS(0x1)
    Headers = 0x1,
    /// PUSH_PROMISE(0x5)
    PushPromise = 0x5,
    /// PRIORITY(0x2)
    Priority = 0x2,
    /// RST_STREAM(0x3)
    RstStream = 0x3,
    /// SETTINGS(0x4)
    Settings = 0x4,
    /// PING(0x6)
    Ping = 0x6,
    /// GOAWAY(0x7)
    GoAway = 0x7,
    /// WINDOW_UPDATE(0x8)
    WindowUpdate = 0x8,
}

impl FrameType {
    fn from_byte(b: u8) -> Option<FrameType> {
        Some(match b {
            0x0 => FrameType::Data,
            0x1 => FrameType::Headers,
            0x5 => FrameType::PushPromise,
            0x2 => FrameType::Priority,
            0x3 => FrameType::RstStream,
            0x4 => FrameType::Settings,
            0x6 => FrameType::Ping,
            0x7 => FrameType::GoAway,
            0x8 => FrameType::WindowUpdate,
            _ => return None,
        })
    }
}

/// HTTP/2 error codes (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum ErrorCode {
    /// Graceful shutdown.
    NoError = 0x0,
    /// Protocol error detected.
    ProtocolError = 0x1,
    /// The endpoint is no longer interested in the stream — what a
    /// browser sends when it gives up on a stalled resource.
    Cancel = 0x8,
    /// Stream refused before processing.
    RefusedStream = 0x7,
    /// The endpoint detected excessive load.
    EnhanceYourCalm = 0xb,
}

impl ErrorCode {
    fn from_u32(v: u32) -> ErrorCode {
        match v {
            0x1 => ErrorCode::ProtocolError,
            0x7 => ErrorCode::RefusedStream,
            0x8 => ErrorCode::Cancel,
            0xb => ErrorCode::EnhanceYourCalm,
            _ => ErrorCode::NoError,
        }
    }
}

const FLAG_END_STREAM: u8 = 0x1;
const FLAG_ACK: u8 = 0x1;
const FLAG_END_HEADERS: u8 = 0x4;

/// One HTTP/2 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// DATA: `len` synthetic payload bytes on `stream`.
    Data {
        /// Carrying stream.
        stream: StreamId,
        /// Payload length in bytes.
        len: u32,
        /// END_STREAM flag.
        end_stream: bool,
    },
    /// HEADERS with an HPACK block (always carries END_HEADERS here; no
    /// CONTINUATION in the model).
    Headers {
        /// Carrying stream.
        stream: StreamId,
        /// Encoded header block.
        block: Bytes,
        /// END_STREAM flag.
        end_stream: bool,
    },
    /// PRIORITY (exclusive bit folded into `dependency`'s high bit).
    Priority {
        /// Prioritised stream.
        stream: StreamId,
        /// Stream this one depends on.
        dependency: u32,
        /// Weight (0-255 encoding 1-256).
        weight: u8,
    },
    /// RST_STREAM.
    RstStream {
        /// Stream being reset.
        stream: StreamId,
        /// Reason.
        error: ErrorCode,
    },
    /// SETTINGS (identifier/value pairs) or its ACK.
    Settings {
        /// ACK flag (an ACK carries no parameters).
        ack: bool,
        /// Parameter pairs.
        params: Vec<(u16, u32)>,
    },
    /// PING or its ACK.
    Ping {
        /// ACK flag.
        ack: bool,
    },
    /// GOAWAY.
    GoAway {
        /// Highest processed stream.
        last_stream: StreamId,
        /// Reason.
        error: ErrorCode,
    },
    /// WINDOW_UPDATE.
    WindowUpdate {
        /// Stream (0 = connection window).
        stream: StreamId,
        /// Window increment in bytes.
        increment: u32,
    },
    /// PUSH_PROMISE: the server announces it will push the resource
    /// described by `block` on `promised` (an even, server-initiated
    /// stream), associated with the client's request stream `stream`.
    PushPromise {
        /// The client-initiated stream the promise rides on.
        stream: StreamId,
        /// The reserved server-initiated stream.
        promised: StreamId,
        /// HPACK block of the pushed request's headers.
        block: Bytes,
    },
}

impl Frame {
    /// The frame's stream id (0 for connection-level frames).
    pub fn stream_id(&self) -> StreamId {
        match self {
            Frame::Data { stream, .. }
            | Frame::Headers { stream, .. }
            | Frame::Priority { stream, .. }
            | Frame::RstStream { stream, .. }
            | Frame::PushPromise { stream, .. }
            | Frame::WindowUpdate { stream, .. } => *stream,
            Frame::Settings { .. } | Frame::Ping { .. } | Frame::GoAway { .. } => {
                StreamId::CONNECTION
            }
        }
    }

    /// The frame's type code.
    pub fn frame_type(&self) -> FrameType {
        match self {
            Frame::Data { .. } => FrameType::Data,
            Frame::Headers { .. } => FrameType::Headers,
            Frame::Priority { .. } => FrameType::Priority,
            Frame::RstStream { .. } => FrameType::RstStream,
            Frame::Settings { .. } => FrameType::Settings,
            Frame::Ping { .. } => FrameType::Ping,
            Frame::GoAway { .. } => FrameType::GoAway,
            Frame::WindowUpdate { .. } => FrameType::WindowUpdate,
            Frame::PushPromise { .. } => FrameType::PushPromise,
        }
    }

    /// Serializes the frame (header + payload).
    ///
    /// Fails with [`FrameEncodeError`] when the payload does not fit the
    /// 24-bit length field ([`MAX_FRAME_PAYLOAD`]); nothing is written
    /// in that case.
    pub fn encode(&self) -> Result<Bytes, FrameEncodeError> {
        let (ty, flags, payload): (FrameType, u8, Bytes) = match self {
            Frame::Data {
                len, end_stream, ..
            } => (
                FrameType::Data,
                if *end_stream { FLAG_END_STREAM } else { 0 },
                Bytes::from(vec![0u8; *len as usize]),
            ),
            Frame::Headers {
                block, end_stream, ..
            } => (
                FrameType::Headers,
                FLAG_END_HEADERS | if *end_stream { FLAG_END_STREAM } else { 0 },
                block.clone(),
            ),
            Frame::Priority {
                dependency, weight, ..
            } => {
                let mut b = BytesMut::with_capacity(5);
                b.put_u32(*dependency);
                b.put_u8(*weight);
                (FrameType::Priority, 0, b.freeze())
            }
            Frame::RstStream { error, .. } => {
                let mut b = BytesMut::with_capacity(4);
                b.put_u32(*error as u32);
                (FrameType::RstStream, 0, b.freeze())
            }
            Frame::Settings { ack, params } => {
                let mut b = BytesMut::with_capacity(params.len() * 6);
                if !ack {
                    for (id, val) in params {
                        b.put_u16(*id);
                        b.put_u32(*val);
                    }
                }
                (
                    FrameType::Settings,
                    if *ack { FLAG_ACK } else { 0 },
                    b.freeze(),
                )
            }
            Frame::Ping { ack } => (
                FrameType::Ping,
                if *ack { FLAG_ACK } else { 0 },
                Bytes::from_static(&[0u8; 8]),
            ),
            Frame::GoAway { last_stream, error } => {
                let mut b = BytesMut::with_capacity(8);
                b.put_u32(last_stream.0);
                b.put_u32(*error as u32);
                (FrameType::GoAway, 0, b.freeze())
            }
            Frame::WindowUpdate { increment, .. } => {
                let mut b = BytesMut::with_capacity(4);
                b.put_u32(*increment);
                (FrameType::WindowUpdate, 0, b.freeze())
            }
            Frame::PushPromise {
                promised, block, ..
            } => {
                let mut b = BytesMut::with_capacity(4 + block.len());
                b.put_u32(promised.0 & 0x7fff_ffff);
                b.extend_from_slice(block);
                (FrameType::PushPromise, FLAG_END_HEADERS, b.freeze())
            }
        };
        if payload.len() > MAX_FRAME_PAYLOAD {
            return Err(FrameEncodeError {
                payload_len: payload.len(),
            });
        }
        let mut out = BytesMut::with_capacity(FRAME_HEADER_LEN + payload.len());
        let len = payload.len() as u32;
        out.put_u8((len >> 16) as u8);
        out.put_u8((len >> 8) as u8);
        out.put_u8(len as u8);
        out.put_u8(ty as u8);
        out.put_u8(flags);
        out.put_u32(self.stream_id().0 & 0x7fff_ffff);
        out.extend_from_slice(&payload);
        Ok(out.freeze())
    }

    /// Parses one complete frame from `bytes`.
    ///
    /// Returns the frame and the number of bytes consumed, or `None` if
    /// `bytes` does not hold a complete, well-formed frame.
    pub fn decode(bytes: &[u8]) -> Option<(Frame, usize)> {
        if bytes.len() < FRAME_HEADER_LEN {
            return None;
        }
        let len = ((bytes[0] as usize) << 16) | ((bytes[1] as usize) << 8) | bytes[2] as usize;
        let ty = FrameType::from_byte(bytes[3])?;
        let flags = bytes[4];
        let stream =
            StreamId(u32::from_be_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]) & 0x7fff_ffff);
        let total = FRAME_HEADER_LEN + len;
        if bytes.len() < total {
            return None;
        }
        let payload = &bytes[FRAME_HEADER_LEN..total];
        let frame = match ty {
            FrameType::Data => Frame::Data {
                stream,
                len: len as u32,
                end_stream: flags & FLAG_END_STREAM != 0,
            },
            FrameType::Headers => Frame::Headers {
                stream,
                block: Bytes::copy_from_slice(payload),
                end_stream: flags & FLAG_END_STREAM != 0,
            },
            FrameType::Priority => {
                if payload.len() != 5 {
                    return None;
                }
                Frame::Priority {
                    stream,
                    dependency: u32::from_be_bytes(payload[0..4].try_into().ok()?),
                    weight: payload[4],
                }
            }
            FrameType::RstStream => {
                if payload.len() != 4 {
                    return None;
                }
                Frame::RstStream {
                    stream,
                    error: ErrorCode::from_u32(u32::from_be_bytes(payload.try_into().ok()?)),
                }
            }
            FrameType::Settings => {
                let ack = flags & FLAG_ACK != 0;
                if !payload.len().is_multiple_of(6) {
                    return None;
                }
                let params = payload
                    .chunks_exact(6)
                    .map(|c| {
                        (
                            u16::from_be_bytes([c[0], c[1]]),
                            u32::from_be_bytes([c[2], c[3], c[4], c[5]]),
                        )
                    })
                    .collect();
                Frame::Settings { ack, params }
            }
            FrameType::Ping => Frame::Ping {
                ack: flags & FLAG_ACK != 0,
            },
            FrameType::GoAway => {
                if payload.len() < 8 {
                    return None;
                }
                Frame::GoAway {
                    last_stream: StreamId(
                        u32::from_be_bytes(payload[0..4].try_into().ok()?) & 0x7fff_ffff,
                    ),
                    error: ErrorCode::from_u32(u32::from_be_bytes(payload[4..8].try_into().ok()?)),
                }
            }
            FrameType::WindowUpdate => {
                if payload.len() != 4 {
                    return None;
                }
                Frame::WindowUpdate {
                    stream,
                    increment: u32::from_be_bytes(payload.try_into().ok()?),
                }
            }
            FrameType::PushPromise => {
                if payload.len() < 4 {
                    return None;
                }
                Frame::PushPromise {
                    stream,
                    promised: StreamId(
                        u32::from_be_bytes(payload[0..4].try_into().ok()?) & 0x7fff_ffff,
                    ),
                    block: Bytes::copy_from_slice(&payload[4..]),
                }
            }
        };
        Some((frame, total))
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Frame::Data {
                stream,
                len,
                end_stream,
            } => {
                write!(
                    f,
                    "DATA[{stream} len={len}{}]",
                    if *end_stream { " ES" } else { "" }
                )
            }
            Frame::Headers {
                stream,
                block,
                end_stream,
            } => write!(
                f,
                "HEADERS[{stream} len={}{}]",
                block.len(),
                if *end_stream { " ES" } else { "" }
            ),
            Frame::Priority { stream, .. } => write!(f, "PRIORITY[{stream}]"),
            Frame::RstStream { stream, error } => write!(f, "RST_STREAM[{stream} {error:?}]"),
            Frame::Settings { ack, .. } => write!(f, "SETTINGS[ack={ack}]"),
            Frame::Ping { ack } => write!(f, "PING[ack={ack}]"),
            Frame::GoAway { last_stream, .. } => write!(f, "GOAWAY[last={last_stream}]"),
            Frame::WindowUpdate { stream, increment } => {
                write!(f, "WINDOW_UPDATE[{stream} +{increment}]")
            }
            Frame::PushPromise {
                stream, promised, ..
            } => {
                write!(f, "PUSH_PROMISE[{stream} -> {promised}]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_util::check::{self, Gen};

    fn roundtrip(f: Frame) {
        let enc = f.encode().expect("encodes");
        let (dec, used) = Frame::decode(&enc).expect("decodes");
        assert_eq!(used, enc.len());
        assert_eq!(dec, f);
    }

    #[test]
    fn roundtrip_all_types() {
        roundtrip(Frame::Data {
            stream: StreamId(5),
            len: 1234,
            end_stream: true,
        });
        roundtrip(Frame::Headers {
            stream: StreamId(1),
            block: Bytes::from_static(b"\x82\x87hello"),
            end_stream: false,
        });
        roundtrip(Frame::Priority {
            stream: StreamId(3),
            dependency: 0x8000_0001,
            weight: 200,
        });
        roundtrip(Frame::RstStream {
            stream: StreamId(7),
            error: ErrorCode::Cancel,
        });
        roundtrip(Frame::Settings {
            ack: false,
            params: vec![(3, 100), (4, 65_535)],
        });
        roundtrip(Frame::Settings {
            ack: true,
            params: vec![],
        });
        roundtrip(Frame::Ping { ack: true });
        roundtrip(Frame::GoAway {
            last_stream: StreamId(9),
            error: ErrorCode::NoError,
        });
        roundtrip(Frame::WindowUpdate {
            stream: StreamId(0),
            increment: 1 << 20,
        });
        roundtrip(Frame::PushPromise {
            stream: StreamId(5),
            promised: StreamId(2),
            block: Bytes::from_static(b"\x82\x87promise"),
        });
    }

    #[test]
    fn decode_partial_returns_none() {
        let enc = Frame::Data {
            stream: StreamId(1),
            len: 100,
            end_stream: false,
        }
        .encode()
        .expect("encodes");
        assert!(Frame::decode(&enc[..enc.len() - 1]).is_none());
        assert!(Frame::decode(&enc[..4]).is_none());
    }

    #[test]
    fn decode_consumes_exact_length_with_trailing_bytes() {
        let enc = Frame::Ping { ack: false }.encode().expect("encodes");
        let mut buf = enc.to_vec();
        buf.extend_from_slice(&[1, 2, 3]);
        let (f, used) = Frame::decode(&buf).unwrap();
        assert_eq!(f, Frame::Ping { ack: false });
        assert_eq!(used, enc.len());
    }

    #[test]
    fn data_wire_size_is_header_plus_len() {
        let enc = Frame::Data {
            stream: StreamId(1),
            len: 2048,
            end_stream: false,
        }
        .encode()
        .expect("encodes");
        assert_eq!(enc.len(), FRAME_HEADER_LEN + 2048);
    }

    #[test]
    fn unknown_type_rejected() {
        let mut enc = Frame::Ping { ack: false }
            .encode()
            .expect("encodes")
            .to_vec();
        enc[3] = 0x9; // CONTINUATION unsupported in the model
        assert!(Frame::decode(&enc).is_none());
    }

    #[test]
    fn data_roundtrip_any_len() {
        check::run("data_roundtrip_any_len", 512, |g: &mut Gen| {
            let len = g.u32(0, 19_999);
            let stream = g.u32(1, 999);
            let es = g.bool(0.5);
            roundtrip(Frame::Data {
                stream: StreamId(stream),
                len,
                end_stream: es,
            });
        });
    }

    #[test]
    fn payload_roundtrips_at_length_field_boundaries() {
        // DATA lengths straddling the u16 boundary and up to the 24-bit
        // maximum must round-trip exactly; one past the maximum must be
        // an encode error, not a silent truncation to `len & 0xffffff`.
        for len in [(1u32 << 16) - 1, 1 << 16, (1 << 24) - 1] {
            roundtrip(Frame::Data {
                stream: StreamId(1),
                len,
                end_stream: false,
            });
        }
        let err = Frame::Data {
            stream: StreamId(1),
            len: 1 << 24,
            end_stream: false,
        }
        .encode()
        .expect_err("2^24-byte payload exceeds the length field");
        assert_eq!(err.payload_len, 1 << 24);
    }

    #[test]
    fn oversized_header_block_is_an_encode_error() {
        // A HEADERS block of exactly MAX_FRAME_PAYLOAD encodes; one byte
        // more errors. Before the guard this truncated the length field.
        roundtrip(Frame::Headers {
            stream: StreamId(1),
            block: Bytes::from(vec![0x82u8; MAX_FRAME_PAYLOAD]),
            end_stream: false,
        });
        let err = Frame::Headers {
            stream: StreamId(1),
            block: Bytes::from(vec![0x82u8; MAX_FRAME_PAYLOAD + 1]),
            end_stream: false,
        }
        .encode()
        .expect_err("oversized block must not truncate");
        assert_eq!(err.payload_len, MAX_FRAME_PAYLOAD + 1);
        // PUSH_PROMISE adds 4 bytes of promised-stream id to the block.
        let err = Frame::PushPromise {
            stream: StreamId(1),
            promised: StreamId(2),
            block: Bytes::from(vec![0x82u8; MAX_FRAME_PAYLOAD]),
        }
        .encode()
        .expect_err("promised-id prefix pushes the payload past the cap");
        assert_eq!(err.payload_len, MAX_FRAME_PAYLOAD + 4);
    }

    #[test]
    fn settings_roundtrip() {
        check::run("settings_roundtrip", 512, |g: &mut Gen| {
            let n = g.usize(0, 7);
            let params: Vec<(u16, u32)> = (0..n)
                .map(|_| (g.u16(0, u16::MAX), g.u32(0, u32::MAX)))
                .collect();
            roundtrip(Frame::Settings { ack: false, params });
        });
    }
}
