//! # h2priv-h2
//!
//! An HTTP/2 protocol model for the `h2priv` reproduction of *"Depending
//! on HTTP/2 for Privacy? Good Luck!"* (DSN 2020): RFC 7540-style
//! framing, a minimal HPACK, stream states, connection-level flow
//! control, and — most importantly — endpoint *behaviour models*:
//!
//! * [`server::ServerNode`] models the paper's multi-threaded HTTP/2
//!   server: each GET spawns a simulated worker thread that, after a
//!   time-to-first-byte, emits DATA chunks on a pacing timer. Concurrent
//!   workers interleave their chunks on the shared TCP stream — this is
//!   the **multiplexing** that recent privacy proposals relied on and
//!   that the paper's adversary destroys. A FIFO drain policy
//!   ([`config::MuxPolicy::Serial`]) reproduces HTTP/1.1-style
//!   head-of-line behaviour for baselines.
//! * [`client::ClientNode`] models a Firefox-like browser: it walks a
//!   [`h2priv_web::Site`] request plan (dependency-triggered GETs),
//!   re-issues a GET on a fresh stream when a response stalls (the
//!   app-layer "retransmission requests" whose duplicate served copies
//!   the paper observes as *intensified multiplexing*, Fig. 4), and
//!   sends `RST_STREAM` + re-request after a long stall on a lossy
//!   channel (the behaviour the paper's targeted-drop phase exploits,
//!   Fig. 6).
//!
//! Both endpoints run over `h2priv-tcp` connections wrapped in
//! `h2priv-tls` record framing, attached to the `h2priv-netsim` event
//! loop as nodes. Every response byte is ground-truth labelled in the
//! TLS [`h2priv_tls::WireMap`], which the metrics in `h2priv-core` join
//! against captures to compute the paper's *degree of multiplexing*.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod config;
pub mod conn;
pub mod frame;
pub mod hpack;
pub mod server;
pub mod stack;
pub mod stream;

pub use client::{ClientNode, ClientReport, ObjectOutcome, RequestRecord};
pub use config::{ClientConfig, MuxPolicy, ServerConfig, ShapingConfig};
pub use frame::{ErrorCode, Frame, FrameType};
pub use server::{ServeRecord, ServerNode};
pub use stream::StreamId;
