//! Glue between a TCP connection, the TLS record layer, and the netsim
//! event loop. Used by both [`crate::server::ServerNode`] and
//! [`crate::client::ClientNode`].

use h2priv_netsim::link::LinkId;
use h2priv_netsim::node::Ctx;
use h2priv_netsim::packet::Packet;
use h2priv_netsim::time::SimTime;
use h2priv_tcp::{TcpConnection, TcpEvent};
use h2priv_tls::{ContentType, OpenedRecord, RecordOpener, RecordSealer, RecordTag, WireMap};
use h2priv_util::bytes::Bytes;

/// Model sizes of the TLS handshake flights (bytes of handshake records
/// on the wire, typical for TLS 1.2 with a ~2.5 KB certificate chain).
pub mod handshake_sizes {
    /// ClientHello record plaintext size.
    pub const CLIENT_HELLO: usize = 512;
    /// ServerHello + Certificate + ServerKeyExchange + ServerHelloDone.
    pub const SERVER_FLIGHT: usize = 3_050;
    /// ClientKeyExchange + ChangeCipherSpec + Finished.
    pub const CLIENT_FINISHED: usize = 130;
    /// Server ChangeCipherSpec + Finished.
    pub const SERVER_FINISHED: usize = 74;
}

/// Non-data transport notifications surfaced to the endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportEvent {
    /// TCP handshake done.
    Connected,
    /// Peer closed its direction.
    PeerFin,
    /// Connection fully closed.
    Closed,
    /// Connection aborted (the paper's "broken connection").
    Aborted,
}

/// A TCP connection wrapped in TLS record framing, with helpers to pump
/// segments into the simulator.
#[derive(Debug)]
pub struct Stack {
    /// The transport connection.
    pub tcp: TcpConnection,
    sealer: RecordSealer,
    opener: RecordOpener,
    egress: Option<LinkId>,
    /// Deadline currently covered by a scheduled TCP tick, if any.
    pub tcp_tick_at: Option<SimTime>,
}

impl Stack {
    /// Wraps a TCP connection.
    pub fn new(tcp: TcpConnection) -> Stack {
        Stack::with_tls_options(tcp, 0, false)
    }

    /// Wraps a TCP connection with countermeasure TLS options:
    /// `pad_block` > 0 pads outgoing ApplicationData records to that
    /// block multiple; `strip_padding` strips the peer's padding from
    /// incoming records.
    pub fn with_tls_options(tcp: TcpConnection, pad_block: usize, strip_padding: bool) -> Stack {
        Stack {
            tcp,
            sealer: if pad_block > 0 {
                RecordSealer::with_padding(pad_block)
            } else {
                RecordSealer::new()
            },
            opener: if strip_padding {
                RecordOpener::with_padding_strip()
            } else {
                RecordOpener::new()
            },
            egress: None,
            tcp_tick_at: None,
        }
    }

    /// Padding overhead bytes sealed so far (0 when padding is off).
    pub fn pad_bytes(&self) -> u64 {
        self.sealer.pad_bytes()
    }

    /// Sets the link this endpoint transmits on (discovered in
    /// `on_start`).
    pub fn set_egress(&mut self, link: LinkId) {
        self.egress = Some(link);
    }

    /// Seals `plaintext` as one TLS record (fragmenting if >16 KiB) and
    /// writes it to TCP. Does not pump; call [`Stack::pump`] afterwards.
    pub fn write_record(&mut self, ct: ContentType, plaintext: &[u8], tag: RecordTag) {
        let wire = self.sealer.seal(ct, plaintext, tag);
        self.tcp.write(wire);
    }

    /// Feeds an arriving packet into TCP; returns complete TLS records
    /// and transport events in arrival order.
    pub fn on_packet(
        &mut self,
        now: SimTime,
        pkt: &Packet,
    ) -> (Vec<OpenedRecord>, Vec<TransportEvent>) {
        self.tcp.on_segment(now, &pkt.header, pkt.payload.clone());
        self.collect()
    }

    /// Drives the TCP timer; returns records/events like
    /// [`Stack::on_packet`].
    pub fn on_tcp_timer(&mut self, now: SimTime) -> (Vec<OpenedRecord>, Vec<TransportEvent>) {
        self.tcp.on_timer(now);
        self.collect()
    }

    fn collect(&mut self) -> (Vec<OpenedRecord>, Vec<TransportEvent>) {
        let mut records = Vec::new();
        let mut events = Vec::new();
        while let Some(ev) = self.tcp.poll_event() {
            match ev {
                TcpEvent::Data(bytes) => {
                    self.opener.push(&bytes);
                    while let Some(rec) = self.opener.poll_record() {
                        records.push(rec);
                    }
                }
                TcpEvent::Connected => events.push(TransportEvent::Connected),
                TcpEvent::PeerFin => events.push(TransportEvent::PeerFin),
                TcpEvent::Closed => events.push(TransportEvent::Closed),
                TcpEvent::Aborted(_) => events.push(TransportEvent::Aborted),
            }
        }
        (records, events)
    }

    /// Transmits every segment TCP has ready onto the egress link.
    ///
    /// # Panics
    /// Panics if the egress link was never set.
    pub fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let egress = self.egress.expect("stack egress not set");
        while let Some((hdr, payload)) = self.tcp.poll_segment(ctx.now()) {
            ctx.send(egress, Packet::new(hdr, payload));
        }
    }

    /// The next TCP deadline that needs an `on_tcp_timer` call, if the
    /// currently scheduled tick (if any) does not already cover it.
    pub fn timer_needs_rescheduling(&self) -> Option<SimTime> {
        match (self.tcp.next_timeout(), self.tcp_tick_at) {
            (Some(t), Some(s)) if s <= t => None, // an earlier/equal tick is coming
            (Some(t), _) => Some(t),
            (None, _) => None,
        }
    }

    /// Ground truth for everything this endpoint sent.
    pub fn wire_map(&self) -> &WireMap {
        self.sealer.wire_map()
    }

    /// Synthetic plaintext of the given length (zero-filled), used for
    /// handshake flights whose content is irrelevant.
    pub fn opaque(len: usize) -> Bytes {
        Bytes::from(vec![0u8; len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::packet::{FlowId, HostAddr};
    use h2priv_tcp::TcpConfig;

    fn flows() -> (FlowId, FlowId) {
        let f = FlowId {
            src: HostAddr(1),
            dst: HostAddr(2),
            sport: 40_000,
            dport: 443,
        };
        (f, f.reversed())
    }

    /// Runs two stacks against each other without a network (zero loss,
    /// zero latency), returning records seen by each side.
    #[test]
    fn records_flow_end_to_end_over_tcp() {
        let (cf, sf) = flows();
        let mut c = Stack::new(TcpConnection::client(cf, TcpConfig::default()));
        let mut s = Stack::new(TcpConnection::server(sf, TcpConfig::default()));
        let now = SimTime::ZERO;
        c.tcp.open(now);

        let mut client_got = vec![];
        let mut server_got = vec![];
        // Exchange segments directly (no Ctx needed when we poll by hand).
        let mut wrote = false;
        for _ in 0..64 {
            let mut quiet = true;
            while let Some((h, p)) = c.tcp.poll_segment(now) {
                s.tcp.on_segment(now, &h, p);
                quiet = false;
            }
            while let Some((h, p)) = s.tcp.poll_segment(now) {
                c.tcp.on_segment(now, &h, p);
                quiet = false;
            }
            let (rs, _es) = s.collect();
            server_got.extend(rs);
            let (rc, _ec) = c.collect();
            client_got.extend(rc);
            if !wrote && matches!(c.tcp.state(), h2priv_tcp::TcpState::Established) {
                c.write_record(
                    ContentType::Handshake,
                    &Stack::opaque(handshake_sizes::CLIENT_HELLO),
                    RecordTag::NONE,
                );
                s.write_record(
                    ContentType::ApplicationData,
                    &Stack::opaque(2_000),
                    RecordTag::NONE,
                );
                wrote = true;
                quiet = false;
            }
            if quiet && wrote {
                break;
            }
        }
        assert_eq!(server_got.len(), 1);
        assert_eq!(server_got[0].content_type, ContentType::Handshake);
        assert_eq!(server_got[0].plaintext.len(), handshake_sizes::CLIENT_HELLO);
        assert_eq!(client_got.len(), 1);
        assert_eq!(client_got[0].plaintext.len(), 2_000);
        // Ground truth recorded on the sender.
        assert_eq!(c.wire_map().spans().len(), 1);
        assert_eq!(s.wire_map().spans().len(), 1);
    }

    #[test]
    fn timer_rescheduling_logic() {
        let (cf, _) = flows();
        let mut c = Stack::new(TcpConnection::client(cf, TcpConfig::default()));
        assert_eq!(c.timer_needs_rescheduling(), None);
        c.tcp.open(SimTime::ZERO);
        let t = c.timer_needs_rescheduling().expect("SYN needs an RTO tick");
        c.tcp_tick_at = Some(t);
        assert_eq!(
            c.timer_needs_rescheduling(),
            None,
            "tick already covers deadline"
        );
        c.tcp_tick_at = Some(t + h2priv_netsim::time::SimDuration::from_secs(5));
        assert_eq!(
            c.timer_needs_rescheduling(),
            Some(t),
            "later tick does not cover"
        );
    }
}
