//! The multi-threaded HTTP/2 server model.
//!
//! Each GET spawns a simulated worker thread (paper Fig. 3): after a
//! time-to-first-byte drawn from the object's
//! [`h2priv_web::ServiceProfile`], the worker emits DATA chunks on a
//! pacing timer. Chunks from concurrent workers are queued per stream and
//! drained round-robin into TCP — producing the interleaved (multiplexed)
//! wire stream the paper studies. The drain is gated on a shallow TCP
//! send buffer so that a client `RST_STREAM` can still flush queued
//! object segments (paper Section IV-D).
//!
//! Duplicate GETs for an object (the client's re-requests) spawn
//! additional workers serving additional *copies* — the paper's observed
//! "intensified multiplexing" pathology (Fig. 4).

use crate::config::{MuxPolicy, ServerConfig, ShapingConfig};
use crate::conn::{OutputScheduler, INITIAL_CONNECTION_WINDOW};
use crate::frame::{ErrorCode, Frame};
use crate::hpack;
use crate::stack::{handshake_sizes, Stack, TransportEvent};
use crate::stream::{StreamId, StreamIdAllocator};
use h2priv_netsim::link::LinkId;
use h2priv_netsim::node::{Ctx, Node, TimerId};
use h2priv_netsim::packet::{FlowId, Packet};
use h2priv_netsim::time::{SimDuration, SimTime};
use h2priv_tcp::{TcpConnection, TcpStats};
use h2priv_tls::{ContentType, OpenedRecord, RecordTag, TrafficClass, WireMap};
use h2priv_util::fxhash::FxHashMap;
use h2priv_util::telemetry;
use h2priv_web::{ObjectId, Site};
use std::collections::VecDeque;

/// The client's source port in the single-connection model.
pub const CLIENT_PORT: u16 = 40_000;
/// The server's HTTPS port.
pub const SERVER_PORT: u16 = 443;

/// Reserved server-initiated stream carrying shaping dummy cells. The
/// client grants flow-control window for DATA on unknown streams and
/// otherwise discards it, so dummies are stripped at the receiver.
pub const DUMMY_STREAM: StreamId = StreamId(2_000_000_000);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TlsPhase {
    AwaitClientHello,
    AwaitFinished,
    Ready,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerState {
    /// Waiting for its turn (Serial policy only).
    Queued,
    /// Backend working on the first byte.
    FirstByteWait,
    /// Emitting DATA chunks.
    Streaming,
    /// All bytes enqueued.
    Done,
    /// Killed by RST_STREAM.
    Killed,
}

#[derive(Debug)]
struct Worker {
    stream: StreamId,
    object: ObjectId,
    remaining: u64,
    state: WorkerState,
    /// Per-chunk emission interval (drawn when the worker starts).
    chunk_interval: SimDuration,
}

/// Ground-truth log entry for one served request (one object copy).
#[derive(Debug, Clone, Copy)]
pub struct ServeRecord {
    /// The object served.
    pub object: ObjectId,
    /// Copy index (0 = first request for this object).
    pub copy: u16,
    /// Stream it was served on.
    pub stream: StreamId,
    /// When the GET arrived.
    pub requested_at: SimTime,
    /// When the worker produced its first byte (None if killed first).
    pub first_byte_at: Option<SimTime>,
    /// When the last byte was enqueued (None if killed first).
    pub completed_at: Option<SimTime>,
    /// Whether the client reset the stream before completion.
    pub killed: bool,
}

#[derive(Debug)]
enum TimerPurpose {
    TcpTick,
    Worker(usize),
    Shape,
}

/// The HTTP/2 server as a netsim node. Construct, hand to
/// [`h2priv_netsim::topology::PathTopology::build`], and inspect
/// [`ServerNode::serve_log`] / [`ServerNode::wire_map`] after the run.
#[derive(Debug)]
pub struct ServerNode {
    cfg: ServerConfig,
    site: Site,
    stack: Stack,
    tls: TlsPhase,
    settings_sent: bool,
    sched: OutputScheduler,
    conn_send_window: u64,
    workers: Vec<Worker>,
    serve_log: Vec<ServeRecord>,
    serial_queue: VecDeque<usize>,
    copies: FxHashMap<ObjectId, u16>,
    push_alloc: StreamIdAllocator,
    timers: FxHashMap<TimerId, TimerPurpose>,
    dead: bool,
    min_window_seen: u64,
    window_blocked_events: u64,
    blocked_log: Vec<(SimTime, u64, u64)>,
    /// Deadline of the currently scheduled shaping tick, if any.
    shape_tick_at: Option<SimTime>,
    /// Last real activity (GET arrival or real DATA emission) — the
    /// shaping hangover is measured from here.
    last_activity_at: Option<SimTime>,
    dummy_cells_sent: u64,
}

impl ServerNode {
    /// Creates a server for `site`.
    pub fn new(site: Site, cfg: ServerConfig) -> ServerNode {
        let flow = FlowId {
            src: cfg.addr,
            dst: cfg.client_addr,
            sport: SERVER_PORT,
            dport: CLIENT_PORT,
        };
        let stack = Stack::with_tls_options(
            TcpConnection::server(flow, cfg.tcp.clone()),
            cfg.pad_block,
            false,
        );
        ServerNode {
            cfg,
            site,
            stack,
            tls: TlsPhase::AwaitClientHello,
            settings_sent: false,
            sched: OutputScheduler::new(),
            conn_send_window: INITIAL_CONNECTION_WINDOW,
            workers: Vec::new(),
            serve_log: Vec::new(),
            serial_queue: VecDeque::new(),
            copies: FxHashMap::default(),
            push_alloc: StreamIdAllocator::server_push(),
            timers: FxHashMap::default(),
            dead: false,
            min_window_seen: u64::MAX,
            window_blocked_events: 0,
            blocked_log: Vec::new(),
            shape_tick_at: None,
            last_activity_at: None,
            dummy_cells_sent: 0,
        }
    }

    /// Ground-truth serve log (one entry per GET actually served).
    pub fn serve_log(&self) -> &[ServeRecord] {
        &self.serve_log
    }

    /// Ground-truth wire map of everything this server sent (the
    /// server→client TCP stream offsets).
    pub fn wire_map(&self) -> &WireMap {
        self.stack.wire_map()
    }

    /// Final TCP statistics.
    pub fn tcp_stats(&self) -> &TcpStats {
        self.stack.tcp.stats()
    }

    /// Copies served per object (≥2 indicates the duplicate-serving
    /// pathology fired).
    pub fn copies_served(&self, object: ObjectId) -> u16 {
        self.copies.get(&object).copied().unwrap_or(0)
    }

    /// Remaining connection-level send window (diagnostics).
    pub fn conn_send_window(&self) -> u64 {
        self.conn_send_window
    }

    /// DATA bytes still queued in the frame scheduler (diagnostics).
    pub fn queued_data_bytes(&self) -> u64 {
        self.sched.queued_data_bytes()
    }

    /// Bytes written to TCP but not yet transmitted (diagnostics).
    pub fn tcp_bytes_unsent(&self) -> u64 {
        self.stack.tcp.bytes_unsent()
    }

    /// Bytes in flight on TCP (diagnostics).
    pub fn tcp_bytes_in_flight(&self) -> u64 {
        self.stack.tcp.bytes_in_flight()
    }

    /// Minimum connection send window observed while pumping.
    pub fn min_window_seen(&self) -> u64 {
        self.min_window_seen
    }

    /// Times the pump stalled on flow control with DATA queued.
    pub fn window_blocked_events(&self) -> u64 {
        self.window_blocked_events
    }

    /// Log of pump stalls: (time, window, queued DATA bytes).
    pub fn blocked_log(&self) -> &[(SimTime, u64, u64)] {
        &self.blocked_log
    }

    /// Shaping dummy cells emitted (0 when shaping is off).
    pub fn dummy_cells_sent(&self) -> u64 {
        self.dummy_cells_sent
    }

    /// TLS record-padding overhead bytes sealed (0 when padding is off).
    pub fn pad_overhead_bytes(&self) -> u64 {
        self.stack.pad_bytes()
    }

    fn handle_records(&mut self, ctx: &mut Ctx<'_>, records: Vec<OpenedRecord>) {
        for rec in records {
            match rec.content_type {
                ContentType::Handshake => match self.tls {
                    TlsPhase::AwaitClientHello => {
                        self.stack.write_record(
                            ContentType::Handshake,
                            &Stack::opaque(handshake_sizes::SERVER_FLIGHT),
                            RecordTag::NONE,
                        );
                        self.tls = TlsPhase::AwaitFinished;
                    }
                    TlsPhase::AwaitFinished => {
                        self.stack.write_record(
                            ContentType::Handshake,
                            &Stack::opaque(handshake_sizes::SERVER_FINISHED),
                            RecordTag::NONE,
                        );
                        self.tls = TlsPhase::Ready;
                    }
                    TlsPhase::Ready => {}
                },
                ContentType::ApplicationData => {
                    let mut buf = &rec.plaintext[..];
                    while let Some((frame, used)) = Frame::decode(buf) {
                        self.handle_frame(ctx, frame);
                        buf = &buf[used..];
                    }
                }
                ContentType::ChangeCipherSpec | ContentType::Alert => {}
            }
        }
    }

    fn handle_frame(&mut self, ctx: &mut Ctx<'_>, frame: Frame) {
        match frame {
            Frame::Settings { ack: false, .. } => {
                if !self.settings_sent {
                    self.settings_sent = true;
                    self.sched.enqueue(
                        Frame::Settings {
                            ack: false,
                            params: vec![(0x3, 128), (0x4, 65_535)],
                        },
                        RecordTag::NONE,
                    );
                }
                self.sched.enqueue(Frame::Settings { ack: true, params: vec![] }, RecordTag::NONE);
            }
            Frame::Settings { ack: true, .. } => {}
            Frame::Headers { stream, block, .. } => {
                self.handle_request(ctx, stream, &block);
            }
            Frame::RstStream { stream, .. } => {
                self.sched.clear_stream(stream);
                let mut killed_any = false;
                for (idx, w) in self.workers.iter_mut().enumerate() {
                    if w.stream == stream && !matches!(w.state, WorkerState::Done | WorkerState::Killed)
                    {
                        w.state = WorkerState::Killed;
                        self.serve_log[idx].killed = true;
                        killed_any = true;
                    }
                }
                if killed_any && self.cfg.mux == MuxPolicy::Serial {
                    self.start_next_serial(ctx);
                }
            }
            Frame::WindowUpdate { stream, increment } => {
                if stream == StreamId::CONNECTION {
                    self.conn_send_window = self.conn_send_window.saturating_add(increment as u64);
                }
            }
            Frame::Ping { ack: false } => {
                self.sched.enqueue(Frame::Ping { ack: true }, RecordTag::NONE);
            }
            Frame::Ping { ack: true }
            | Frame::Priority { .. }
            | Frame::GoAway { .. }
            | Frame::PushPromise { .. } // never sent by clients
            | Frame::Data { .. } => {}
        }
    }

    fn handle_request(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, block: &[u8]) {
        self.last_activity_at = Some(ctx.now());
        let Some(req) = hpack::decode_request(block) else {
            self.sched.enqueue(
                Frame::RstStream {
                    stream,
                    error: ErrorCode::ProtocolError,
                },
                RecordTag::NONE,
            );
            return;
        };
        let Some(object) = self.site.by_path(&req.path).map(|o| o.id) else {
            self.sched.enqueue(
                Frame::RstStream {
                    stream,
                    error: ErrorCode::RefusedStream,
                },
                RecordTag::NONE,
            );
            return;
        };
        let copy = {
            let c = self.copies.entry(object).or_insert(0);
            let this = *c;
            *c += 1;
            this
        };
        if copy > 0 && !self.cfg.serve_duplicates {
            // Deduplicating server (ablation): the original stream is
            // already serving this object; ignore the duplicate.
            return;
        }
        self.spawn_worker(ctx, stream, object, copy);
        // Server push: announce and serve the manifest children of this
        // object on server-initiated streams (paper Section VII).
        let children: Vec<ObjectId> = self
            .cfg
            .push_manifest
            .iter()
            .find(|(parent, _)| *parent == object)
            .map(|(_, c)| c.clone())
            .unwrap_or_default();
        for child in children {
            let child_copy = {
                let c = self.copies.entry(child).or_insert(0);
                let this = *c;
                *c += 1;
                this
            };
            if child_copy > 0 {
                continue; // already served or being served
            }
            let promised = self.push_alloc.next_id();
            let path = self.site.object(child).path.clone();
            let block = hpack::encode_request("pushed", &path);
            self.sched.enqueue(
                Frame::PushPromise {
                    stream,
                    promised,
                    block,
                },
                RecordTag {
                    stream_id: stream.0,
                    object_id: child.0,
                    copy: 0,
                    class: TrafficClass::Control,
                },
            );
            self.spawn_worker(ctx, promised, child, 0);
        }
    }

    fn spawn_worker(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, object: ObjectId, copy: u16) {
        let idx = self.workers.len();
        self.workers.push(Worker {
            stream,
            object,
            remaining: self.site.object(object).size,
            state: WorkerState::Queued,
            chunk_interval: SimDuration::ZERO,
        });
        self.serve_log.push(ServeRecord {
            object,
            copy,
            stream,
            requested_at: ctx.now(),
            first_byte_at: None,
            completed_at: None,
            killed: false,
        });
        let someone_active = self
            .workers
            .iter()
            .any(|w| matches!(w.state, WorkerState::FirstByteWait | WorkerState::Streaming));
        if self.cfg.mux == MuxPolicy::Serial && someone_active {
            self.serial_queue.push_back(idx);
        } else {
            self.start_worker(ctx, idx);
        }
    }

    fn start_worker(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let object = self.workers[idx].object;
        let obj = self.site.object(object);
        let fb = obj.service.draw_first_byte(ctx.rng());
        self.workers[idx].chunk_interval = obj.service.draw_chunk_interval(ctx.rng(), obj.size);
        self.workers[idx].state = WorkerState::FirstByteWait;
        let t = ctx.schedule(fb);
        self.timers.insert(t, TimerPurpose::Worker(idx));
    }

    fn start_next_serial(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(next) = self.serial_queue.pop_front() {
            if matches!(self.workers[next].state, WorkerState::Queued) {
                self.start_worker(ctx, next);
                return;
            }
        }
    }

    fn worker_tick(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        if self.dead {
            return;
        }
        let (stream, object, state) = {
            let w = &self.workers[idx];
            (w.stream, w.object, w.state)
        };
        let obj = self.site.object(object);
        let copy = self.serve_log[idx].copy;
        match state {
            WorkerState::FirstByteWait => {
                self.serve_log[idx].first_byte_at = Some(ctx.now());
                let media = match obj.media {
                    h2priv_web::MediaType::Html => "text/html",
                    h2priv_web::MediaType::Js => "application/javascript",
                    h2priv_web::MediaType::Css => "text/css",
                    h2priv_web::MediaType::Image => "image/png",
                    h2priv_web::MediaType::Json => "application/json",
                    h2priv_web::MediaType::Font => "font/woff2",
                };
                let block = hpack::encode_response(obj.size, media);
                self.sched.enqueue(
                    Frame::Headers {
                        stream,
                        block,
                        end_stream: false,
                    },
                    RecordTag {
                        stream_id: stream.0,
                        object_id: object.0,
                        copy,
                        class: TrafficClass::ResponseHeaders,
                    },
                );
                self.workers[idx].state = WorkerState::Streaming;
                let interval = self.workers[idx].chunk_interval;
                let t = ctx.schedule(interval);
                self.timers.insert(t, TimerPurpose::Worker(idx));
            }
            WorkerState::Streaming => {
                let chunk = (obj.service.chunk_size as u64).min(self.workers[idx].remaining);
                self.workers[idx].remaining -= chunk;
                let end_stream = self.workers[idx].remaining == 0;
                self.sched.enqueue(
                    Frame::Data {
                        stream,
                        len: chunk as u32,
                        end_stream,
                    },
                    RecordTag {
                        stream_id: stream.0,
                        object_id: object.0,
                        copy,
                        class: TrafficClass::ObjectData,
                    },
                );
                if end_stream {
                    self.workers[idx].state = WorkerState::Done;
                    self.serve_log[idx].completed_at = Some(ctx.now());
                    let requested = self.serve_log[idx].requested_at;
                    telemetry::observe(
                        "h2.serve_ns",
                        ctx.now().as_nanos().saturating_sub(requested.as_nanos()),
                    );
                    if self.cfg.mux == MuxPolicy::Serial {
                        self.start_next_serial(ctx);
                    }
                } else {
                    let interval = self.workers[idx].chunk_interval;
                    let t = ctx.schedule(interval);
                    self.timers.insert(t, TimerPurpose::Worker(idx));
                }
            }
            WorkerState::Queued | WorkerState::Done | WorkerState::Killed => {}
        }
    }

    fn pump_frames(&mut self, now: SimTime) {
        while self.stack.tcp.bytes_unsent() < self.cfg.send_watermark {
            self.min_window_seen = self.min_window_seen.min(self.conn_send_window);
            let Some(qf) = self.sched.pop_next(self.conn_send_window) else {
                if self.sched.queued_data_bytes() > 0 {
                    self.window_blocked_events += 1;
                    telemetry::count("h2.window_blocked_events", 1);
                    if self.blocked_log.len() < 256 {
                        self.blocked_log.push((
                            now,
                            self.conn_send_window,
                            self.sched.queued_data_bytes(),
                        ));
                    }
                }
                break;
            };
            if let Frame::Data { len, .. } = qf.frame {
                self.conn_send_window = self.conn_send_window.saturating_sub(len as u64);
            }
            let bytes = qf
                .frame
                .encode()
                .expect("frame within RFC 7540 payload limit");
            self.stack
                .write_record(ContentType::ApplicationData, &bytes, qf.tag);
        }
    }

    /// One shaping tick: drain control frames, emit at most one real
    /// DATA cell, or a dummy cell while within the hangover of real
    /// activity. All sizes and timings are deterministic (no RNG).
    fn shape_tick(&mut self, ctx: &mut Ctx<'_>, sh: ShapingConfig) {
        if self.dead {
            return;
        }
        let mut sent_data = false;
        while self.stack.tcp.bytes_unsent() < self.cfg.send_watermark {
            self.min_window_seen = self.min_window_seen.min(self.conn_send_window);
            let Some(qf) = self.sched.pop_next_shaped(self.conn_send_window, sh.cell) else {
                break;
            };
            let is_data = matches!(qf.frame, Frame::Data { .. });
            if let Frame::Data { len, .. } = qf.frame {
                self.conn_send_window = self.conn_send_window.saturating_sub(len as u64);
            }
            let bytes = qf
                .frame
                .encode()
                .expect("frame within RFC 7540 payload limit");
            self.stack
                .write_record(ContentType::ApplicationData, &bytes, qf.tag);
            if is_data {
                self.last_activity_at = Some(ctx.now());
                sent_data = true;
                break;
            }
        }
        if !sent_data
            && self.within_hangover(ctx.now(), sh)
            && self.stack.tcp.bytes_unsent() < self.cfg.send_watermark
            && sh.cell as u64 <= self.conn_send_window
        {
            self.conn_send_window -= sh.cell as u64;
            self.dummy_cells_sent += 1;
            let frame = Frame::Data {
                stream: DUMMY_STREAM,
                len: sh.cell,
                end_stream: false,
            };
            let bytes = frame.encode().expect("cell within RFC 7540 payload limit");
            self.stack.write_record(
                ContentType::ApplicationData,
                &bytes,
                RecordTag {
                    stream_id: DUMMY_STREAM.0,
                    object_id: u32::MAX,
                    copy: 0,
                    class: TrafficClass::Control,
                },
            );
        }
    }

    fn within_hangover(&self, now: SimTime, sh: ShapingConfig) -> bool {
        self.last_activity_at
            .is_some_and(|t| now <= t + sh.hangover)
    }

    fn shape_work_pending(&self, now: SimTime, sh: ShapingConfig) -> bool {
        !self.sched.is_empty()
            || self.workers.iter().any(|w| {
                matches!(
                    w.state,
                    WorkerState::Queued | WorkerState::FirstByteWait | WorkerState::Streaming
                )
            })
            || self.within_hangover(now, sh)
    }

    fn ensure_shape_tick(&mut self, ctx: &mut Ctx<'_>) {
        let Some(sh) = self.cfg.shaping else { return };
        if self.dead || self.shape_tick_at.is_some() || !self.shape_work_pending(ctx.now(), sh) {
            return;
        }
        let timer = ctx.schedule(sh.interval);
        self.shape_tick_at = Some(ctx.now() + sh.interval);
        self.timers.insert(timer, TimerPurpose::Shape);
    }

    fn after_activity(&mut self, ctx: &mut Ctx<'_>) {
        if self.cfg.shaping.is_some() {
            // Shaped mode: frames leave only on the shaping tick.
            self.ensure_shape_tick(ctx);
        } else {
            self.pump_frames(ctx.now());
        }
        self.stack.pump(ctx);
        if let Some(t) = self.stack.timer_needs_rescheduling() {
            let timer = ctx.schedule_at(t);
            self.timers.insert(timer, TimerPurpose::TcpTick);
            self.stack.tcp_tick_at = Some(t);
        }
    }

    fn handle_events(&mut self, events: Vec<TransportEvent>) {
        for ev in events {
            if ev == TransportEvent::Aborted {
                self.dead = true;
            }
        }
    }
}

impl Node for ServerNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let egress = ctx.egress_links();
        assert_eq!(egress.len(), 1, "server expects exactly one egress link");
        self.stack.set_egress(egress[0]);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: LinkId, pkt: Packet) {
        let (records, events) = self.stack.on_packet(ctx.now(), &pkt);
        self.handle_events(events);
        self.handle_records(ctx, records);
        self.after_activity(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
        match self.timers.remove(&timer) {
            Some(TimerPurpose::TcpTick) => {
                self.stack.tcp_tick_at = None;
                let (records, events) = self.stack.on_tcp_timer(ctx.now());
                self.handle_events(events);
                self.handle_records(ctx, records);
            }
            Some(TimerPurpose::Worker(idx)) => {
                self.worker_tick(ctx, idx);
            }
            Some(TimerPurpose::Shape) => {
                self.shape_tick_at = None;
                if let Some(sh) = self.cfg.shaping {
                    self.shape_tick(ctx, sh);
                }
            }
            None => {}
        }
        self.after_activity(ctx);
    }
}
