//! HTTP/2 stream identifiers and the stream state machine (RFC 7540 §5.1).

use core::fmt;
use h2priv_util::impl_to_json;

/// An HTTP/2 stream identifier. Client-initiated streams are odd;
/// stream 0 is the connection itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(pub u32);

impl_to_json!(newtype StreamId);

impl StreamId {
    /// The connection control stream.
    pub const CONNECTION: StreamId = StreamId(0);

    /// `true` for client-initiated stream ids.
    pub fn is_client_initiated(self) -> bool {
        self.0 % 2 == 1
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Allocates successive client stream ids (1, 3, 5, ...).
#[derive(Debug, Clone)]
pub struct StreamIdAllocator {
    next: u32,
}

impl StreamIdAllocator {
    /// A fresh client-side allocator.
    pub fn client() -> StreamIdAllocator {
        StreamIdAllocator { next: 1 }
    }

    /// A fresh server-side allocator (even ids, for pushed streams).
    pub fn server_push() -> StreamIdAllocator {
        StreamIdAllocator { next: 2 }
    }

    /// Returns the next id.
    pub fn next_id(&mut self) -> StreamId {
        let id = StreamId(self.next);
        self.next += 2;
        id
    }
}

/// Stream lifecycle states (condensed RFC 7540 §5.1 set, receiver view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamState {
    /// No frames exchanged yet.
    Idle,
    /// Request sent/received, response not finished.
    Open,
    /// We sent END_STREAM, peer has not.
    HalfClosedLocal,
    /// Peer sent END_STREAM, we have not.
    HalfClosedRemote,
    /// Fully closed (END_STREAM both ways or RST_STREAM).
    Closed,
}

impl StreamState {
    /// Transition on sending END_STREAM.
    pub fn on_local_end(self) -> StreamState {
        match self {
            StreamState::Idle | StreamState::Open => StreamState::HalfClosedLocal,
            StreamState::HalfClosedRemote => StreamState::Closed,
            s => s,
        }
    }

    /// Transition on receiving END_STREAM.
    pub fn on_remote_end(self) -> StreamState {
        match self {
            StreamState::Idle | StreamState::Open => StreamState::HalfClosedRemote,
            StreamState::HalfClosedLocal => StreamState::Closed,
            s => s,
        }
    }

    /// Transition on RST_STREAM (either direction).
    pub fn on_reset(self) -> StreamState {
        StreamState::Closed
    }

    /// `true` if more frames may arrive from the peer.
    pub fn peer_may_send(self) -> bool {
        matches!(
            self,
            StreamState::Idle | StreamState::Open | StreamState::HalfClosedLocal
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_yields_odd_ids() {
        let mut a = StreamIdAllocator::client();
        let ids: Vec<u32> = (0..4).map(|_| a.next_id().0).collect();
        assert_eq!(ids, vec![1, 3, 5, 7]);
        assert!(StreamId(3).is_client_initiated());
        assert!(!StreamId(2).is_client_initiated());
    }

    #[test]
    fn push_allocator_yields_even_ids() {
        let mut a = StreamIdAllocator::server_push();
        let ids: Vec<u32> = (0..3).map(|_| a.next_id().0).collect();
        assert_eq!(ids, vec![2, 4, 6]);
        assert!(ids.iter().all(|i| !StreamId(*i).is_client_initiated()));
    }

    #[test]
    fn full_lifecycle_request_response() {
        // Client view: send request with END_STREAM, then receive
        // response END_STREAM.
        let s = StreamState::Idle;
        let s = s.on_local_end();
        assert_eq!(s, StreamState::HalfClosedLocal);
        assert!(s.peer_may_send());
        let s = s.on_remote_end();
        assert_eq!(s, StreamState::Closed);
        assert!(!s.peer_may_send());
    }

    #[test]
    fn reset_closes_from_any_state() {
        for s in [
            StreamState::Idle,
            StreamState::Open,
            StreamState::HalfClosedLocal,
            StreamState::HalfClosedRemote,
            StreamState::Closed,
        ] {
            assert_eq!(s.on_reset(), StreamState::Closed);
        }
    }
}
