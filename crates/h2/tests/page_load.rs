//! End-to-end page loads over the full stack: netsim path topology,
//! TCP, TLS records, HTTP/2 endpoints, website model.

use h2priv_h2::{ClientConfig, ClientNode, MuxPolicy, ServerConfig, ServerNode};
use h2priv_netsim::middlebox::Passthrough;
use h2priv_netsim::prelude::*;
use h2priv_web::sites::{blog_site, two_object_site};
use h2priv_web::{IsideWith, ObjectId};

fn run_page_load(
    site: h2priv_web::Site,
    seed: u64,
    server_cfg: ServerConfig,
) -> (h2priv_h2::ClientReport, Simulator, PathTopology) {
    let mut sim = Simulator::new(seed);
    let cfg = PathConfig::default();
    let client = ClientNode::new(site.clone(), ClientConfig::default());
    let server = ServerNode::new(site, server_cfg);
    let topo = PathTopology::build(&mut sim, client, Box::new(Passthrough), server, &cfg);
    sim.run_until_idle(SimTime::from_secs(90));
    let report = sim.node_ref::<ClientNode>(topo.client).report();
    (report, sim, topo)
}

#[test]
fn blog_page_load_completes() {
    let (report, _sim, _topo) = run_page_load(blog_site(), 7, ServerConfig::default());
    assert!(!report.connection_broken);
    assert!(report.page_started_at.is_some(), "h2 layer became ready");
    assert!(
        report.page_completed_at.is_some(),
        "all objects should complete; outcomes: {:?}",
        report.objects
    );
    // All five objects fully received with correct byte counts.
    let site = blog_site();
    for obj in site.objects() {
        let done: u64 = report
            .requests
            .iter()
            .filter(|r| r.object == obj.id && r.completed_at.is_some())
            .map(|r| r.bytes)
            .max()
            .unwrap_or(0);
        assert_eq!(done, obj.size, "object {} byte count", obj.path);
    }
    // No pathological behaviour on a clean network.
    assert_eq!(report.resets_sent, 0);
    assert_eq!(report.h2_rerequests, 0);
}

#[test]
fn two_object_site_with_zero_gap_multiplexes() {
    let site = two_object_site(60_000, 50_000, h2priv_netsim::time::SimDuration::ZERO);
    let (report, sim, topo) = run_page_load(site, 11, ServerConfig::default());
    assert!(report.page_completed_at.is_some());
    let server = sim.node_ref::<ServerNode>(topo.server);
    // Ground truth: the two objects' data spans interleave on the wire.
    let map = server.wire_map();
    let seq: Vec<u32> = map
        .spans()
        .iter()
        .filter(|s| s.tag.is_object_data())
        .map(|s| s.tag.object_id)
        .collect();
    let transitions = seq.windows(2).filter(|w| w[0] != w[1]).count();
    assert!(
        transitions >= 3,
        "expected interleaved object data, got transition count {transitions} in {seq:?}"
    );
}

#[test]
fn two_object_site_with_large_gap_serializes() {
    let site = two_object_site(
        20_000,
        15_000,
        h2priv_netsim::time::SimDuration::from_millis(600),
    );
    let (report, sim, topo) = run_page_load(site, 13, ServerConfig::default());
    assert!(report.page_completed_at.is_some());
    let server = sim.node_ref::<ServerNode>(topo.server);
    let seq: Vec<u32> = server
        .wire_map()
        .spans()
        .iter()
        .filter(|s| s.tag.is_object_data())
        .map(|s| s.tag.object_id)
        .collect();
    let transitions = seq.windows(2).filter(|w| w[0] != w[1]).count();
    assert_eq!(transitions, 1, "expected serial transfer, got {seq:?}");
}

#[test]
fn serial_mux_policy_never_interleaves() {
    let site = two_object_site(60_000, 50_000, h2priv_netsim::time::SimDuration::ZERO);
    let server_cfg = ServerConfig {
        mux: MuxPolicy::Serial,
        ..ServerConfig::default()
    };
    let (report, sim, topo) = run_page_load(site, 17, server_cfg);
    assert!(report.page_completed_at.is_some());
    let server = sim.node_ref::<ServerNode>(topo.server);
    let seq: Vec<u32> = server
        .wire_map()
        .spans()
        .iter()
        .filter(|s| s.tag.is_object_data())
        .map(|s| s.tag.object_id)
        .collect();
    let transitions = seq.windows(2).filter(|w| w[0] != w[1]).count();
    assert_eq!(transitions, 1, "serial policy must not interleave: {seq:?}");
}

#[test]
fn isidewith_page_load_completes_and_requests_follow_plan_order() {
    let mut seed_rng = h2priv_netsim::rng::SimRng::new(99);
    let iw = IsideWith::generate(&mut seed_rng);
    let (report, sim, topo) = run_page_load(iw.site.clone(), 23, ServerConfig::default());
    assert!(!report.connection_broken);
    assert!(
        report.page_completed_at.is_some(),
        "page should complete; incomplete objects: {:?}",
        report
            .objects
            .iter()
            .filter(|o| o.completed_at.is_none())
            .map(|o| o.object)
            .collect::<Vec<_>>()
    );
    // The HTML is the 6th GET on the wire (paper Section IV).
    let first_attempts: Vec<ObjectId> = report
        .requests
        .iter()
        .filter(|r| r.attempt == 0)
        .map(|r| r.object)
        .collect();
    assert_eq!(
        first_attempts[5], iw.html,
        "HTML must be the 6th object requested"
    );
    // The 8 images are requested in survey-result order.
    let image_positions: Vec<usize> = iw
        .images
        .iter()
        .map(|img| {
            first_attempts
                .iter()
                .position(|o| o == img)
                .expect("image requested")
        })
        .collect();
    for w in image_positions.windows(2) {
        assert!(
            w[0] < w[1],
            "image requests out of order: {image_positions:?}"
        );
    }
    // Server served every object exactly once on a clean network.
    let server = sim.node_ref::<ServerNode>(topo.server);
    for obj in iw.site.objects() {
        assert_eq!(
            server.copies_served(obj.id),
            1,
            "object {} copies",
            obj.path
        );
    }
}

#[test]
fn deterministic_page_load_same_seed() {
    let run = |seed| {
        let (report, _, _) = run_page_load(blog_site(), seed, ServerConfig::default());
        report
            .requests
            .iter()
            .map(|r| (r.object, r.issued_at, r.completed_at))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6), "different seeds should differ in timing");
}

#[test]
fn image_burst_is_heavily_multiplexed_at_baseline() {
    // The paper reports 80–99 % degree of multiplexing for the emblem
    // images without an adversary. We check the weaker structural claim
    // here (the metric itself lives in h2priv-core): the image bursts'
    // data spans interleave heavily.
    let mut seed_rng = h2priv_netsim::rng::SimRng::new(3);
    let iw = IsideWith::generate(&mut seed_rng);
    let (report, sim, topo) = run_page_load(iw.site.clone(), 31, ServerConfig::default());
    assert!(report.page_completed_at.is_some());
    let server = sim.node_ref::<ServerNode>(topo.server);
    let image_ids: Vec<u32> = iw.images.iter().map(|i| i.0).collect();
    let seq: Vec<u32> = server
        .wire_map()
        .spans()
        .iter()
        .filter(|s| s.tag.is_object_data() && image_ids.contains(&s.tag.object_id))
        .map(|s| s.tag.object_id)
        .collect();
    let transitions = seq.windows(2).filter(|w| w[0] != w[1]).count();
    assert!(
        transitions > 8,
        "expected interleaving within the image burst, got {transitions} transitions"
    );
}

#[test]
fn server_push_delivers_objects_without_gets() {
    // Push the blog's two images with the HTML: the client must complete
    // the page while issuing GETs only for the non-pushed objects.
    let site = blog_site();
    let server_cfg = ServerConfig {
        push_manifest: vec![(
            h2priv_web::ObjectId(0),
            vec![h2priv_web::ObjectId(2), h2priv_web::ObjectId(3)],
        )],
        ..ServerConfig::default()
    };
    let (report, sim, topo) = run_page_load(site.clone(), 41, server_cfg);
    assert!(
        report.page_completed_at.is_some(),
        "pushed page must complete: {:?}",
        report.objects
    );
    // No GET was issued for the pushed images (their only request record
    // is the synthesized push acceptance on an even stream).
    for pushed in [2u32, 3] {
        let reqs: Vec<_> = report
            .requests
            .iter()
            .filter(|r| r.object == h2priv_web::ObjectId(pushed))
            .collect();
        assert_eq!(reqs.len(), 1, "exactly one (pushed) record for obj{pushed}");
        assert!(
            !reqs[0].stream.is_client_initiated(),
            "pushed object must arrive on a server-initiated stream"
        );
        assert!(reqs[0].completed_at.is_some(), "pushed object completed");
    }
    // Ground truth: the server served each object exactly once.
    let server = sim.node_ref::<ServerNode>(topo.server);
    for obj in site.objects() {
        assert_eq!(server.copies_served(obj.id), 1, "object {}", obj.path);
    }
}

#[test]
fn pushed_and_requested_transfers_share_the_connection() {
    let site = blog_site();
    let server_cfg = ServerConfig {
        push_manifest: vec![(h2priv_web::ObjectId(0), vec![h2priv_web::ObjectId(4)])],
        ..ServerConfig::default()
    };
    let (report, sim, topo) = run_page_load(site, 43, server_cfg);
    assert!(report.page_completed_at.is_some());
    // The pushed object's bytes are labelled on the same wire map.
    let server = sim.node_ref::<ServerNode>(topo.server);
    assert!(server.wire_map().object_bytes(4) >= 31_000);
}
