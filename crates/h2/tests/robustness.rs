//! Robustness tests for the protocol codecs and the frame scheduler:
//! arbitrary bytes must never panic the decoders, and the scheduler must
//! preserve per-stream order and conserve frames under random workloads.

use h2priv_h2::conn::OutputScheduler;
use h2priv_h2::frame::Frame;
use h2priv_h2::hpack;
use h2priv_h2::stream::StreamId;
use h2priv_tls::RecordTag;
use h2priv_util::check::{self, Gen};
use h2priv_util::{prop_assert, prop_assert_eq};

/// Frame decoding of arbitrary bytes never panics, and on success
/// reports a consumed length within the buffer.
#[test]
fn frame_decode_never_panics() {
    check::run("frame_decode_never_panics", 256, |g: &mut Gen| {
        let bytes = g.bytes(127);
        if let Some((_, used)) = Frame::decode(&bytes) {
            prop_assert!(used <= bytes.len());
            prop_assert!(used >= 9);
        }
    });
}

/// HPACK decoding of arbitrary bytes never panics.
#[test]
fn hpack_decode_never_panics() {
    check::run("hpack_decode_never_panics", 256, |g: &mut Gen| {
        let bytes = g.bytes(95);
        let _ = hpack::decode(&bytes);
    });
}

/// Any frame that encodes must decode to itself even with trailing
/// garbage appended (streams carry back-to-back frames).
#[test]
fn frame_roundtrip_with_trailing_garbage() {
    check::run(
        "frame_roundtrip_with_trailing_garbage",
        256,
        |g: &mut Gen| {
            let stream = g.u32(1, 99);
            let len = g.u32(0, 1_999);
            let es = g.bool(0.5);
            let garbage = g.bytes(15);
            let f = Frame::Data {
                stream: StreamId(stream),
                len,
                end_stream: es,
            };
            let mut buf = f.encode().expect("encodes").to_vec();
            let framed = buf.len();
            buf.extend_from_slice(&garbage);
            let (decoded, used) = Frame::decode(&buf).expect("well-formed prefix");
            prop_assert_eq!(used, framed);
            prop_assert_eq!(decoded, f);
        },
    );
}

/// The output scheduler conserves frames, preserves per-stream FIFO
/// order, and never emits a DATA frame larger than the window given.
#[test]
fn scheduler_conserves_and_orders() {
    check::run("scheduler_conserves_and_orders", 256, |g: &mut Gen| {
        let n = g.usize(1, 63);
        let ops: Vec<(u32, u32)> = (0..n).map(|_| (g.u32(1, 7), g.u32(1, 4_999))).collect();
        let window = g.u64(1_000, 19_999);
        let mut sched = OutputScheduler::new();
        for (stream, len) in &ops {
            sched.enqueue(
                Frame::Data {
                    stream: StreamId(*stream * 2 + 1),
                    len: *len,
                    end_stream: false,
                },
                RecordTag::NONE,
            );
        }
        let mut popped: Vec<(u32, u32)> = Vec::new();
        // Pop with a fixed window; frames above it must stay queued.
        while let Some(qf) = sched.pop_next(window) {
            match qf.frame {
                Frame::Data { stream, len, .. } => {
                    prop_assert!(len as u64 <= window, "window violated");
                    popped.push((stream.0, len));
                }
                _ => unreachable!("only DATA enqueued"),
            }
        }
        // Everything that fits was popped; the rest is exactly the
        // oversized frames and anything behind them on their stream.
        let fits = |l: u32| l as u64 <= window;
        let mut expected_remaining = 0u64;
        let mut blocked: std::collections::HashSet<u32> = Default::default();
        for (stream, len) in &ops {
            let sid = *stream * 2 + 1;
            if blocked.contains(&sid) || !fits(*len) {
                blocked.insert(sid);
                expected_remaining += *len as u64;
            }
        }
        prop_assert_eq!(sched.queued_data_bytes(), expected_remaining);
        // Per-stream relative order must match enqueue order.
        for sid in popped
            .iter()
            .map(|(s, _)| *s)
            .collect::<std::collections::HashSet<_>>()
        {
            let enq: Vec<u32> = ops
                .iter()
                .filter(|(s, _)| s * 2 + 1 == sid)
                .map(|(_, l)| *l)
                .collect();
            let got: Vec<u32> = popped
                .iter()
                .filter(|(s, _)| *s == sid)
                .map(|(_, l)| *l)
                .collect();
            prop_assert_eq!(&enq[..got.len()], &got[..], "per-stream FIFO violated");
        }
    });
}

/// Request header blocks of arbitrary (printable) paths round-trip.
#[test]
fn request_roundtrip_any_path() {
    check::run("request_roundtrip_any_path", 256, |g: &mut Gen| {
        const PATH_CHARS: &[u8] =
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/._-";
        let mut path = String::from("/");
        for _ in 0..g.usize(0, 80) {
            path.push(char::from(*g.choose(PATH_CHARS)));
        }
        let block = hpack::encode_request("example.org", &path);
        let req = hpack::decode_request(&block).expect("round-trips");
        prop_assert_eq!(req.path, path);
        prop_assert_eq!(req.authority, "example.org");
    });
}

/// Response blocks round-trip any content length.
#[test]
fn response_roundtrip_any_length() {
    check::run("response_roundtrip_any_length", 256, |g: &mut Gen| {
        let len = g.u64(0, u64::MAX);
        let block = hpack::encode_response(len, "image/png");
        let resp = hpack::decode_response(&block).expect("round-trips");
        prop_assert_eq!(resp.content_length, Some(len));
    });
}

#[test]
fn scheduler_interleaving_is_fair_round_robin() {
    // Three streams with 4 frames each: the drain pattern must cycle
    // a,b,c,a,b,c...
    let mut sched = OutputScheduler::new();
    for i in 0..4u32 {
        for s in [1u32, 3, 5] {
            sched.enqueue(
                Frame::Data {
                    stream: StreamId(s),
                    len: 100 + i,
                    end_stream: false,
                },
                RecordTag::NONE,
            );
        }
    }
    let order: Vec<u32> = std::iter::from_fn(|| sched.pop_next(u64::MAX))
        .map(|qf| qf.frame.stream_id().0)
        .collect();
    assert_eq!(order, vec![1, 3, 5, 1, 3, 5, 1, 3, 5, 1, 3, 5]);
}

#[test]
fn hpack_rejects_truncated_blocks_gracefully() {
    let block = hpack::encode_request("example.org", "/index.html");
    for cut in 1..block.len() {
        // Truncations must never panic; most are invalid, some may
        // decode to a shorter header list.
        let _ = hpack::decode(&block[..cut]);
    }
}

#[test]
fn settings_frame_with_many_params_roundtrips() {
    let params: Vec<(u16, u32)> = (0..32).map(|i| (i as u16, i as u32 * 1000)).collect();
    let f = Frame::Settings {
        ack: false,
        params: params.clone(),
    };
    let enc = f.encode().expect("encodes");
    let (dec, _) = Frame::decode(&enc).expect("decodes");
    match dec {
        Frame::Settings { ack, params: p } => {
            assert!(!ack);
            assert_eq!(p, params);
        }
        other => panic!("wrong frame {other:?}"),
    }
}

#[test]
fn data_frame_payload_is_zeroed_synthetic_bytes() {
    let f = Frame::Data {
        stream: StreamId(9),
        len: 64,
        end_stream: false,
    };
    let enc = f.encode().expect("encodes");
    assert_eq!(enc.len(), 9 + 64);
    assert!(
        enc[9..].iter().all(|b| *b == 0),
        "synthetic payload must be zeros"
    );
}

#[test]
fn hpack_block_sizes_separate_gets_from_control_frames() {
    // The monitor's GET heuristic depends on this separation: a GET
    // record body must far exceed any control frame's.
    let get = hpack::encode_request("www.isidewith.com", "/results/2020");
    let get_record_body = get.len() + 9 + 16; // frame hdr + AEAD tag
    let wu = Frame::WindowUpdate {
        stream: StreamId(0),
        increment: 1,
    }
    .encode()
    .expect("encodes");
    let wu_record_body = wu.len() + 16;
    assert!(get_record_body >= 120, "GET body {get_record_body}");
    assert!(wu_record_body <= 40, "control body {wu_record_body}");
}

#[test]
fn clear_stream_then_reenqueue_works() {
    let mut sched = OutputScheduler::new();
    sched.enqueue(
        Frame::Data {
            stream: StreamId(1),
            len: 10,
            end_stream: false,
        },
        RecordTag::NONE,
    );
    assert_eq!(sched.clear_stream(StreamId(1)), 10);
    assert!(sched.is_empty());
    sched.enqueue(
        Frame::Data {
            stream: StreamId(1),
            len: 20,
            end_stream: true,
        },
        RecordTag::NONE,
    );
    let qf = sched.pop_next(u64::MAX).expect("re-enqueued frame");
    assert!(matches!(qf.frame, Frame::Data { len: 20, .. }));
}
