//! The append-only campaign journal and its crash recovery.
//!
//! The journal is a jsonl file of [`record`](crate::record) lines: one
//! `header` line naming the campaign, then one `record` line per
//! completed cell, appended **strictly in global cell order** and
//! flushed per append. The ordering invariant is what makes recovery
//! trivial: a valid journal is always the header plus a contiguous
//! prefix `0..k` of the campaign's cells, so resuming is "replay `k`
//! records into the fold, run cells `k..total`".
//!
//! [`recover`] reads a journal back through the tolerant jsonl reader:
//! a partial final line (the flush a crash interrupted) is *dropped* and
//! reported, while a corrupted complete line — bad JSON, bad checksum,
//! a cell out of sequence — is a hard [`RecoveryError::Corrupt`],
//! because in-place corruption is not something resume can paper over.
//! [`truncate_to`] then cuts the file back to the recovered good prefix
//! before appending resumes.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

use h2priv_util::json::Json;
use h2priv_util::jsonl;

use crate::record::{self, LineBody};

/// An open journal, append side.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Creates (truncating any existing file) a journal whose first line
    /// is the stamped `header_line`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn create(path: &Path, header_line: &str) -> io::Result<Journal> {
        let file = File::create(path)?;
        let mut journal = Journal { file };
        journal.append_line(header_line)?;
        Ok(journal)
    }

    /// Opens an existing journal for appending. The caller is expected
    /// to have run [`recover`] + [`truncate_to`] first.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn open_append(path: &Path) -> io::Result<Journal> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal { file })
    }

    /// Appends one protocol line (newline added here) and flushes, so a
    /// crash can only ever lose the line currently being written.
    ///
    /// # Errors
    /// Propagates filesystem errors, including short writes.
    pub fn append_line(&mut self, line: &str) -> io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }
}

/// One replayed journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordEntry {
    /// Global cell index.
    pub cell: u64,
    /// Batch index.
    pub batch: u64,
    /// Trial index within the batch.
    pub trial: u64,
    /// The trial's result payload.
    pub payload: Json,
}

/// The recovered good prefix of a journal.
#[derive(Debug)]
pub struct Recovery {
    /// The header body (campaign identity fields).
    pub header: Json,
    /// Replayed records; guaranteed contiguous cells `0..records.len()`.
    pub records: Vec<RecordEntry>,
    /// Length of the good prefix in bytes; [`truncate_to`] target.
    pub good_bytes: u64,
    /// Bytes of partial final line dropped, if the file ended mid-write.
    pub dropped_tail: u64,
}

/// Why a journal could not be recovered.
#[derive(Debug)]
pub enum RecoveryError {
    /// Filesystem failure.
    Io(io::Error),
    /// In-place corruption: a *complete* line that is invalid (bad
    /// JSON/UTF-8, bad checksum, wrong kind, cell out of sequence).
    Corrupt {
        /// 1-based index of the offending line among parsed lines.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "journal I/O error: {e}"),
            RecoveryError::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
        }
    }
}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

/// Reads a journal back, dropping a truncated final line and verifying
/// the header/record structure and every checksum.
///
/// # Errors
/// [`RecoveryError::Corrupt`] on any invalid *complete* line; I/O errors
/// are propagated.
pub fn recover(path: &Path) -> Result<Recovery, RecoveryError> {
    let bytes = std::fs::read(path)?;
    let read = jsonl::read_tolerant(&bytes).map_err(|e| RecoveryError::Corrupt {
        line: e.line,
        message: e.message,
    })?;
    let good_bytes = read
        .truncated
        .as_ref()
        .map_or(bytes.len(), |t| t.byte_offset) as u64;
    let dropped_tail = read.truncated.as_ref().map_or(0, |t| t.len) as u64;

    let mut values = read.records.into_iter().enumerate();
    let (_, first) = values.next().ok_or(RecoveryError::Corrupt {
        line: 1,
        message: "journal has no header line".to_string(),
    })?;
    let header = decode(&first, 1)?;
    let LineBody::Header { fields } = header else {
        return Err(RecoveryError::Corrupt {
            line: 1,
            message: "first journal line is not a header".to_string(),
        });
    };

    let mut records = Vec::new();
    for (i, value) in values {
        let line = i + 1;
        match decode(&value, line)? {
            LineBody::Record {
                cell,
                batch,
                trial,
                payload,
            } => {
                let expected = records.len() as u64;
                if cell != expected {
                    return Err(RecoveryError::Corrupt {
                        line,
                        message: format!("cell {cell} out of sequence (expected {expected})"),
                    });
                }
                records.push(RecordEntry {
                    cell,
                    batch,
                    trial,
                    payload,
                });
            }
            other => {
                return Err(RecoveryError::Corrupt {
                    line,
                    message: format!("unexpected journal line kind: {other:?}"),
                });
            }
        }
    }
    Ok(Recovery {
        header: fields,
        records,
        good_bytes,
        dropped_tail,
    })
}

fn decode(value: &Json, line: usize) -> Result<LineBody, RecoveryError> {
    let body = record::check(value).map_err(|message| RecoveryError::Corrupt { line, message })?;
    record::classify(body).map_err(|message| RecoveryError::Corrupt { line, message })
}

/// Truncates the journal to its recovered good prefix.
///
/// # Errors
/// Propagates filesystem errors.
pub fn truncate_to(path: &Path, good_bytes: u64) -> io::Result<()> {
    OpenOptions::new()
        .write(true)
        .open(path)?
        .set_len(good_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{header_body, record_body, stamp};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "h2priv_journal_{}_{}_{}.jsonl",
            std::process::id(),
            tag,
            n
        ))
    }

    fn header_line() -> String {
        stamp(&header_body(&[
            ("experiment".to_string(), Json::Str("x".to_string())),
            ("cells".to_string(), Json::UInt(4)),
        ]))
    }

    fn payload(n: u64) -> Json {
        Json::Obj(vec![("retrans".to_string(), Json::UInt(n))])
    }

    fn write_journal(path: &Path, cells: u64) {
        let mut journal = Journal::create(path, &header_line()).unwrap();
        for c in 0..cells {
            journal
                .append_line(&stamp(&record_body(c, c / 2, c % 2, payload(c))))
                .unwrap();
        }
    }

    #[test]
    fn roundtrip_clean_journal() {
        let path = temp_path("clean");
        write_journal(&path, 3);
        let rec = recover(&path).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[2].cell, 2);
        assert_eq!(rec.records[2].payload, payload(2));
        assert_eq!(rec.header.get("cells").and_then(Json::as_u64), Some(4));
        assert_eq!(rec.dropped_tail, 0);
        assert_eq!(
            rec.good_bytes,
            std::fs::metadata(&path).unwrap().len(),
            "good prefix covers the whole clean file"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_dropped_and_truncatable() {
        let path = temp_path("tail");
        write_journal(&path, 2);
        let good = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append of cell 2.
        let partial = stamp(&record_body(2, 1, 0, payload(2)));
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&partial.as_bytes()[..partial.len() / 2])
            .unwrap();
        drop(f);

        let rec = recover(&path).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.good_bytes, good);
        assert!(rec.dropped_tail > 0);

        truncate_to(&path, rec.good_bytes).unwrap();
        let rec2 = recover(&path).unwrap();
        assert_eq!(rec2.records.len(), 2);
        assert_eq!(rec2.dropped_tail, 0);

        // Appending after recovery yields the same bytes as an
        // uninterrupted run.
        let mut journal = Journal::open_append(&path).unwrap();
        journal
            .append_line(&stamp(&record_body(2, 1, 0, payload(2))))
            .unwrap();
        let resumed = std::fs::read(&path).unwrap();
        let clean = temp_path("tail_ref");
        write_journal(&clean, 3);
        assert_eq!(resumed, std::fs::read(&clean).unwrap());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&clean).unwrap();
    }

    #[test]
    fn corrupt_complete_line_is_fatal() {
        let path = temp_path("corrupt");
        write_journal(&path, 2);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the second record's payload.
        let target = bytes.len() - 10;
        bytes[target] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = recover(&path).unwrap_err();
        assert!(matches!(err, RecoveryError::Corrupt { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_sequence_cell_is_fatal() {
        let path = temp_path("seq");
        let mut journal = Journal::create(&path, &header_line()).unwrap();
        journal
            .append_line(&stamp(&record_body(1, 0, 1, payload(1))))
            .unwrap();
        let err = recover(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("out of sequence"), "{msg}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_header_is_fatal() {
        let path = temp_path("nohdr");
        std::fs::write(
            &path,
            format!("{}\n", stamp(&record_body(0, 0, 0, payload(0)))),
        )
        .unwrap();
        let err = recover(&path).unwrap_err();
        assert!(err.to_string().contains("not a header"), "{err}");
        std::fs::remove_file(&path).unwrap();

        let empty = temp_path("empty");
        std::fs::write(&empty, b"").unwrap();
        let err = recover(&empty).unwrap_err();
        assert!(err.to_string().contains("no header"), "{err}");
        std::fs::remove_file(&empty).unwrap();
    }
}
