//! A reorder buffer that releases values strictly in index order.
//!
//! Workers race: shard 2 can finish cell 40 while shard 1 is still on
//! cell 3. The journal and the incremental fold both require records in
//! global cell order, so every record passes through an [`OrderedSink`]
//! keyed by its cell index. Values at the next expected index drain
//! immediately (together with any directly following pending run);
//! everything else waits in a `BTreeMap`. Duplicates — a cell below the
//! watermark or already pending, which respawned workers can legally
//! re-emit — are counted and dropped, never released twice.

use std::collections::BTreeMap;

/// Reorder buffer releasing `(index, value)` pairs in strict index order.
#[derive(Debug)]
pub struct OrderedSink<T> {
    next: u64,
    pending: BTreeMap<u64, T>,
    duplicates_dropped: u64,
    max_pending: usize,
}

impl<T> OrderedSink<T> {
    /// A sink whose first released index will be `start`.
    pub fn new(start: u64) -> Self {
        OrderedSink {
            next: start,
            pending: BTreeMap::new(),
            duplicates_dropped: 0,
            max_pending: 0,
        }
    }

    /// Offers a value; returns the (possibly empty) run of values that
    /// became releasable, in index order. Duplicate indices are dropped.
    pub fn push(&mut self, index: u64, value: T) -> Vec<(u64, T)> {
        if index < self.next || self.pending.contains_key(&index) {
            self.duplicates_dropped += 1;
            return Vec::new();
        }
        self.pending.insert(index, value);
        self.max_pending = self.max_pending.max(self.pending.len());
        let mut released = Vec::new();
        while let Some(value) = self.pending.remove(&self.next) {
            released.push((self.next, value));
            self.next += 1;
        }
        released
    }

    /// The next index that has not been released yet (the watermark).
    pub fn next_index(&self) -> u64 {
        self.next
    }

    /// Number of values currently buffered out of order.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total duplicate offers dropped so far.
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped
    }

    /// High-water mark of the pending buffer.
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn indices(run: &[(u64, &'static str)]) -> Vec<u64> {
        run.iter().map(|&(i, _)| i).collect()
    }

    #[test]
    fn in_order_values_release_immediately() {
        let mut sink = OrderedSink::new(0);
        assert_eq!(indices(&sink.push(0, "a")), [0]);
        assert_eq!(indices(&sink.push(1, "b")), [1]);
        assert_eq!(sink.next_index(), 2);
        assert_eq!(sink.pending_len(), 0);
    }

    #[test]
    fn out_of_order_values_wait_for_the_gap() {
        let mut sink = OrderedSink::new(0);
        assert!(sink.push(2, "c").is_empty());
        assert!(sink.push(1, "b").is_empty());
        assert_eq!(sink.pending_len(), 2);
        // Filling the gap releases the whole contiguous run.
        assert_eq!(indices(&sink.push(0, "a")), [0, 1, 2]);
        assert_eq!(sink.next_index(), 3);
        assert_eq!(sink.max_pending(), 3);
    }

    #[test]
    fn duplicates_are_dropped_and_counted() {
        let mut sink = OrderedSink::new(0);
        sink.push(0, "a");
        assert!(sink.push(0, "again").is_empty());
        sink.push(2, "c");
        assert!(sink.push(2, "again").is_empty());
        assert_eq!(sink.duplicates_dropped(), 2);
        assert_eq!(indices(&sink.push(1, "b")), [1, 2]);
    }

    #[test]
    fn nonzero_start_acts_as_watermark() {
        let mut sink = OrderedSink::new(10);
        assert!(sink.push(9, "stale").is_empty());
        assert_eq!(sink.duplicates_dropped(), 1);
        assert_eq!(indices(&sink.push(10, "a")), [10]);
    }

    #[test]
    fn released_values_arrive_with_their_index() {
        let mut sink = OrderedSink::new(0);
        sink.push(1, "b");
        let run = sink.push(0, "a");
        assert_eq!(run, [(0, "a"), (1, "b")]);
    }
}
