//! The shard supervisor: spawns worker processes over cell ranges,
//! enforces heartbeats, respawns crashed workers with bounded backoff,
//! reassigns ranges of permanently dead shards, and releases records to
//! the caller strictly in global cell order.
//!
//! Topology: `shards` slots, each running at most one child process at a
//! time over one contiguous cell range. The remaining cell space is
//! split into one chunk per slot up front; a slot that finishes early
//! pulls the next queued range (ranges re-enter the queue when their
//! shard retires). One reader thread per child forwards stdout lines to
//! the supervisor over a channel, tagged with a per-slot generation
//! counter so lines from a killed child cannot be attributed to its
//! replacement.
//!
//! Failure policy, in the order checks apply when a worker dies:
//!
//! 1. **Poisoned range** — the slot's first missing cell has now crashed
//!    a worker [`SupervisorConfig::max_cell_attempts`] times; the
//!    campaign fails with [`SupervisorError::PoisonedRange`] naming the
//!    unfinished range. Retrying forever would never converge.
//! 2. **Fail-on-crash** — with [`SupervisorConfig::fail_on_crash`], the
//!    first crash aborts the campaign ([`SupervisorError::CrashAborted`])
//!    with the journal prefix intact; the resume tests and the verify
//!    gate use this to stop a campaign at an exact injected point.
//! 3. **Retire** — the slot exhausted its respawn budget; its unfinished
//!    range goes back on the queue for a surviving slot. If every slot
//!    is retired, [`SupervisorError::AllShardsDead`].
//! 4. **Respawn** — otherwise the slot restarts its unfinished range
//!    after a [`backoff`](crate::backoff) delay (non-blocking: other
//!    slots keep streaming while one waits out its backoff).
//!
//! A worker that stops emitting lines for longer than the heartbeat
//! timeout (e.g. an injected stall) is killed and handled exactly like a
//! crash.

use std::collections::{HashMap, VecDeque};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::backoff::respawn_delay_ms;
use crate::inject::{InjectKind, InjectSchedule};
use crate::order::OrderedSink;
use crate::record::{self, LineBody};

/// How a worker process is launched; the supervisor appends
/// `--cells A-B` and any `--inject-*` flags per spawn.
#[derive(Debug, Clone)]
pub struct WorkerCmd {
    /// Path to the worker binary.
    pub program: PathBuf,
    /// Base arguments common to every spawn.
    pub args: Vec<String>,
}

/// Supervisor tuning knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Number of shard slots (concurrent worker processes).
    pub shards: usize,
    /// Kill a worker that has been silent this long.
    pub heartbeat: Duration,
    /// Respawns a single slot may consume before it is retired and its
    /// range is reassigned.
    pub max_respawns_per_slot: u32,
    /// Crashes attributable to the same first-missing cell before the
    /// campaign fails with a poisoned-range error.
    pub max_cell_attempts: u32,
    /// Abort the campaign on the first worker crash instead of
    /// respawning (used to stop exactly at an injected kill).
    pub fail_on_crash: bool,
    /// Seed for the deterministic respawn backoff schedule.
    pub backoff_seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            shards: 1,
            heartbeat: Duration::from_millis(10_000),
            max_respawns_per_slot: 3,
            max_cell_attempts: 3,
            fail_on_crash: false,
            backoff_seed: 0,
        }
    }
}

/// Counters describing what a campaign run had to do.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Records released to the caller (cells newly completed).
    pub cells_run: u64,
    /// Worker respawns after crashes or stalls.
    pub respawns: u64,
    /// Workers killed for missing the heartbeat.
    pub stall_kills: u64,
    /// Ranges reassigned from a retired slot to survivors.
    pub reassigned_ranges: u64,
    /// Duplicate records dropped by the ordering sink.
    pub duplicates_dropped: u64,
    /// High-water mark of the reorder buffer.
    pub max_pending: usize,
}

/// Why a campaign run failed.
#[derive(Debug)]
pub enum SupervisorError {
    /// Filesystem/process-management failure.
    Io(std::io::Error),
    /// A worker violated the line protocol (bad checksum, out-of-range
    /// cell, unexpected kind).
    Protocol {
        /// Slot the offending worker ran on.
        shard: usize,
        /// What it did wrong.
        message: String,
    },
    /// The record sink (journal append / fold) rejected a record.
    Sink(String),
    /// Cells `start..end` cannot make progress: the first of them has
    /// crashed a worker `attempts` times.
    PoisonedRange {
        /// First unfinished (and repeatedly crashing) cell.
        start: u64,
        /// End of the unfinished range (exclusive).
        end: u64,
        /// Crash count attributed to `start`.
        attempts: u32,
    },
    /// Every slot exhausted its respawn budget with work remaining.
    AllShardsDead {
        /// Cells still unfinished when the last slot retired.
        remaining: u64,
    },
    /// `fail_on_crash` was set and a worker crashed.
    CrashAborted {
        /// Slot whose worker crashed.
        shard: usize,
        /// First cell the crashed worker left unfinished.
        cell: u64,
    },
}

impl std::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupervisorError::Io(e) => write!(f, "campaign I/O error: {e}"),
            SupervisorError::Protocol { shard, message } => {
                write!(f, "protocol violation from shard {shard}: {message}")
            }
            SupervisorError::Sink(message) => write!(f, "record sink error: {message}"),
            SupervisorError::PoisonedRange {
                start,
                end,
                attempts,
            } => write!(
                f,
                "poisoned trial range: cells {start}..{end} cannot complete \
                 (cell {start} crashed its worker {attempts} times)"
            ),
            SupervisorError::AllShardsDead { remaining } => write!(
                f,
                "all shards exhausted their respawn budget with {remaining} cells unfinished"
            ),
            SupervisorError::CrashAborted { shard, cell } => write!(
                f,
                "worker on shard {shard} crashed before cell {cell} (fail-on-crash set)"
            ),
        }
    }
}

impl From<std::io::Error> for SupervisorError {
    fn from(e: std::io::Error) -> Self {
        SupervisorError::Io(e)
    }
}

enum Event {
    Line { slot: usize, gen: u64, line: String },
    Eof { slot: usize, gen: u64 },
}

#[derive(Debug, PartialEq)]
enum SlotState {
    Idle,
    Running,
    Backoff { until: Instant },
    Retired,
}

struct Slot {
    state: SlotState,
    gen: u64,
    respawns_used: u32,
    child: Option<Child>,
    /// Current assignment `[start, end)`; kept through Backoff.
    range: Option<(u64, u64)>,
    /// First cell not yet received from the current worker.
    next_cell: u64,
    last_seen: Instant,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: SlotState::Idle,
            gen: 0,
            respawns_used: 0,
            child: None,
            range: None,
            next_cell: 0,
            last_seen: Instant::now(),
        }
    }

    fn reap(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Splits `[start, end)` into up to `shards` contiguous chunks, longer
/// chunks first, covering every cell exactly once.
fn split_ranges(start: u64, end: u64, shards: usize) -> VecDeque<(u64, u64)> {
    let total = end - start;
    let shards = (shards as u64).max(1).min(total.max(1));
    let mut out = VecDeque::new();
    let mut at = start;
    for i in 0..shards {
        let len = total / shards + u64::from(i < total % shards);
        if len > 0 {
            out.push_back((at, at + len));
            at += len;
        }
    }
    out
}

/// Runs the campaign's remaining cells `[start_cell, total_cells)`
/// across supervised workers, invoking `on_record(cell, raw_line, body)`
/// strictly in cell order exactly once per cell.
///
/// # Errors
/// See [`SupervisorError`]; on any error, all live workers are killed
/// first, and anything already passed to `on_record` remains valid (the
/// journal keeps its good prefix).
pub fn run<F>(
    cfg: &SupervisorConfig,
    cmd: &WorkerCmd,
    start_cell: u64,
    total_cells: u64,
    inject: &mut InjectSchedule,
    mut on_record: F,
) -> Result<RunStats, SupervisorError>
where
    F: FnMut(u64, &str, &LineBody) -> Result<(), String>,
{
    let mut stats = RunStats::default();
    if start_cell >= total_cells {
        return Ok(stats);
    }
    let mut slots: Vec<Slot> = (0..cfg.shards.max(1)).map(|_| Slot::new()).collect();
    let mut queue = split_ranges(start_cell, total_cells, slots.len());
    let mut sink: OrderedSink<(String, LineBody)> = OrderedSink::new(start_cell);
    let mut attempts: HashMap<u64, u32> = HashMap::new();
    let (tx, rx) = mpsc::channel();

    let result = drive(
        cfg,
        cmd,
        total_cells,
        inject,
        &mut on_record,
        &mut stats,
        &mut slots,
        &mut queue,
        &mut sink,
        &mut attempts,
        &tx,
        &rx,
    );
    for slot in &mut slots {
        slot.reap();
    }
    stats.duplicates_dropped = sink.duplicates_dropped();
    stats.max_pending = sink.max_pending();
    result.map(|()| stats)
}

#[allow(clippy::too_many_arguments)]
fn drive<F>(
    cfg: &SupervisorConfig,
    cmd: &WorkerCmd,
    total_cells: u64,
    inject: &mut InjectSchedule,
    on_record: &mut F,
    stats: &mut RunStats,
    slots: &mut [Slot],
    queue: &mut VecDeque<(u64, u64)>,
    sink: &mut OrderedSink<(String, LineBody)>,
    attempts: &mut HashMap<u64, u32>,
    tx: &mpsc::Sender<Event>,
    rx: &mpsc::Receiver<Event>,
) -> Result<(), SupervisorError>
where
    F: FnMut(u64, &str, &LineBody) -> Result<(), String>,
{
    let tick = Duration::from_millis(10);
    loop {
        // Assign work: idle slots pull queued ranges; slots whose
        // backoff expired restart their own unfinished range.
        for (s, slot) in slots.iter_mut().enumerate() {
            let start_own = match slot.state {
                SlotState::Backoff { until } if Instant::now() >= until => true,
                SlotState::Idle => {
                    if let Some(range) = queue.pop_front() {
                        slot.range = Some(range);
                        true
                    } else {
                        false
                    }
                }
                _ => false,
            };
            if start_own {
                spawn_worker(cmd, inject, slot, s, tx)?;
            }
        }

        if sink.next_index() >= total_cells {
            return Ok(());
        }

        // Stuck detector: nothing running, nothing waiting to run, yet
        // cells remain — a logic error, not a worker failure.
        let anyone_active = slots
            .iter()
            .any(|s| matches!(s.state, SlotState::Running | SlotState::Backoff { .. }));
        if !anyone_active && queue.is_empty() {
            return Err(SupervisorError::Protocol {
                shard: 0,
                message: format!(
                    "no active workers but {} cells unfinished",
                    total_cells - sink.next_index()
                ),
            });
        }

        match rx.recv_timeout(tick) {
            Ok(Event::Line { slot, gen, line }) => {
                if gen == slots[slot].gen && slots[slot].state == SlotState::Running {
                    handle_line(cfg, total_cells, on_record, stats, slots, sink, slot, &line)?;
                }
            }
            Ok(Event::Eof { slot, gen }) => {
                if gen == slots[slot].gen && slots[slot].state == SlotState::Running {
                    handle_crash(cfg, total_cells, stats, slots, queue, sink, attempts, slot)?;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!("supervisor holds a sender"),
        }

        // Heartbeat sweep.
        for s in 0..slots.len() {
            if slots[s].state == SlotState::Running && slots[s].last_seen.elapsed() > cfg.heartbeat
            {
                stats.stall_kills += 1;
                slots[s].gen += 1; // orphan the reader before killing
                slots[s].reap();
                handle_crash(cfg, total_cells, stats, slots, queue, sink, attempts, s)?;
            }
        }
    }
}

fn spawn_worker(
    cmd: &WorkerCmd,
    inject: &mut InjectSchedule,
    slot: &mut Slot,
    index: usize,
    tx: &mpsc::Sender<Event>,
) -> Result<(), SupervisorError> {
    let (a, b) = slot.range.expect("spawn_worker needs an assigned range");
    let mut command = Command::new(&cmd.program);
    command
        .args(&cmd.args)
        .arg("--cells")
        .arg(format!("{a}-{b}"))
        .stdin(Stdio::null())
        .stdout(Stdio::piped());
    for (kind, cell) in inject.take(index, (a, b)) {
        let flag = match kind {
            InjectKind::Kill => "--inject-kill",
            InjectKind::Stall => "--inject-stall",
        };
        command.arg(flag).arg(cell.to_string());
    }
    let mut child = command.spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    slot.gen += 1;
    slot.child = Some(child);
    slot.next_cell = a;
    slot.last_seen = Instant::now();
    slot.state = SlotState::Running;

    let gen = slot.gen;
    let tx = tx.clone();
    std::thread::spawn(move || {
        let mut reader = std::io::BufReader::new(stdout);
        let mut buf = String::new();
        loop {
            buf.clear();
            match reader.read_line(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    // A partial final line (no newline) is the residue of
                    // a crash mid-write; drop it and let Eof report.
                    if buf.ends_with('\n') {
                        let line = buf.trim_end_matches('\n').to_string();
                        if tx
                            .send(Event::Line {
                                slot: index,
                                gen,
                                line,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                }
            }
        }
        let _ = tx.send(Event::Eof { slot: index, gen });
    });
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn handle_line<F>(
    cfg: &SupervisorConfig,
    total_cells: u64,
    on_record: &mut F,
    stats: &mut RunStats,
    slots: &mut [Slot],
    sink: &mut OrderedSink<(String, LineBody)>,
    s: usize,
    line: &str,
) -> Result<(), SupervisorError>
where
    F: FnMut(u64, &str, &LineBody) -> Result<(), String>,
{
    let _ = cfg;
    let protocol = |message: String| SupervisorError::Protocol { shard: s, message };
    let body = record::parse_line(line).map_err(protocol)?;
    slots[s].last_seen = Instant::now();
    let (a, b) = slots[s].range.expect("running slot has a range");
    match body {
        LineBody::Hello { start, end } => {
            if (start, end) != (a, b) {
                return Err(protocol(format!(
                    "hello claims cells {start}-{end}, assigned {a}-{b}"
                )));
            }
        }
        LineBody::Record { cell, .. } => {
            if cell != slots[s].next_cell || cell >= b {
                return Err(protocol(format!(
                    "record for cell {cell}, expected {} in range {a}-{b}",
                    slots[s].next_cell
                )));
            }
            slots[s].next_cell = cell + 1;
            if cell >= total_cells {
                return Err(protocol(format!("cell {cell} beyond campaign end")));
            }
            for (index, (raw, decoded)) in sink.push(cell, (line.to_string(), body.clone())) {
                on_record(index, &raw, &decoded).map_err(SupervisorError::Sink)?;
                stats.cells_run += 1;
            }
        }
        LineBody::Done { cells } => {
            if slots[s].next_cell != b {
                return Err(protocol(format!(
                    "done after cell {}, assigned through {b}",
                    slots[s].next_cell
                )));
            }
            if cells != b - a {
                return Err(protocol(format!(
                    "done reports {cells} cells, range {a}-{b} has {}",
                    b - a
                )));
            }
            slots[s].reap();
            slots[s].range = None;
            slots[s].state = SlotState::Idle;
        }
        LineBody::Header { .. } => {
            return Err(protocol("worker sent a header line".to_string()));
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn handle_crash(
    cfg: &SupervisorConfig,
    total_cells: u64,
    stats: &mut RunStats,
    slots: &mut [Slot],
    queue: &mut VecDeque<(u64, u64)>,
    sink: &OrderedSink<(String, LineBody)>,
    attempts: &mut HashMap<u64, u32>,
    s: usize,
) -> Result<(), SupervisorError> {
    slots[s].reap();
    let (_, b) = slots[s].range.expect("crashed slot has a range");
    let first_missing = slots[s].next_cell;
    if first_missing >= b {
        // Crashed after emitting every assigned cell but before Done —
        // the work is all in hand, so treat the range as complete.
        slots[s].range = None;
        slots[s].state = SlotState::Idle;
        return Ok(());
    }

    let cell_attempts = attempts.entry(first_missing).or_insert(0);
    *cell_attempts += 1;
    if *cell_attempts >= cfg.max_cell_attempts {
        return Err(SupervisorError::PoisonedRange {
            start: first_missing,
            end: b,
            attempts: *cell_attempts,
        });
    }
    if cfg.fail_on_crash {
        return Err(SupervisorError::CrashAborted {
            shard: s,
            cell: first_missing,
        });
    }
    if slots[s].respawns_used >= cfg.max_respawns_per_slot {
        slots[s].range = None;
        slots[s].state = SlotState::Retired;
        queue.push_back((first_missing, b));
        stats.reassigned_ranges += 1;
        if slots.iter().all(|sl| sl.state == SlotState::Retired) {
            return Err(SupervisorError::AllShardsDead {
                remaining: total_cells - sink.next_index(),
            });
        }
        return Ok(());
    }
    slots[s].respawns_used += 1;
    stats.respawns += 1;
    let delay = respawn_delay_ms(cfg.backoff_seed, s as u64, slots[s].respawns_used);
    slots[s].range = Some((first_missing, b));
    slots[s].state = SlotState::Backoff {
        until: Instant::now() + Duration::from_millis(delay),
    };
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_cells_exactly_once() {
        for (start, end, shards) in [(0u64, 12u64, 4usize), (3, 10, 2), (0, 5, 8), (7, 7, 3)] {
            let ranges = split_ranges(start, end, shards);
            let mut at = start;
            for &(a, b) in &ranges {
                assert_eq!(a, at, "contiguous");
                assert!(b > a, "non-empty");
                at = b;
            }
            assert_eq!(at, end, "covers everything");
            assert!(ranges.len() <= shards.max(1));
        }
    }

    #[test]
    fn split_ranges_balances_within_one_cell() {
        let ranges = split_ranges(0, 10, 3);
        let lens: Vec<u64> = ranges.iter().map(|&(a, b)| b - a).collect();
        assert_eq!(lens.iter().sum::<u64>(), 10);
        assert!(lens.iter().all(|&l| l == 3 || l == 4), "{lens:?}");
    }

    #[test]
    fn empty_campaign_returns_immediately() {
        let cfg = SupervisorConfig::default();
        let cmd = WorkerCmd {
            program: PathBuf::from("/nonexistent"),
            args: vec![],
        };
        let stats = run(&cfg, &cmd, 5, 5, &mut InjectSchedule::new(), |_, _, _| {
            panic!("no records expected")
        })
        .unwrap();
        assert_eq!(stats.cells_run, 0);
    }

    #[test]
    fn unspawnable_worker_reports_io_error() {
        let cfg = SupervisorConfig::default();
        let cmd = WorkerCmd {
            program: PathBuf::from("/nonexistent/worker/binary"),
            args: vec![],
        };
        let err = run(&cfg, &cmd, 0, 4, &mut InjectSchedule::new(), |_, _, _| {
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, SupervisorError::Io(_)), "{err}");
    }
}
