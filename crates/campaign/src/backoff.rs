//! Bounded, seed-deterministic exponential respawn backoff.
//!
//! A crashed worker is not respawned immediately — a worker that dies on
//! startup (bad binary, exhausted fd table) would otherwise pin a core
//! in a spawn loop. The delay doubles per respawn attempt of the slot,
//! is capped at [`MAX_DELAY_MS`], and carries a small deterministic
//! jitter derived by hashing `(seed, shard, attempt)` with a
//! splitmix64-style mixer — no RNG state, so a campaign run with a fixed
//! backoff seed schedules respawns identically every time (the property
//! the supervisor policy tests pin).

/// Delay for the first respawn attempt, in milliseconds.
pub const BASE_DELAY_MS: u64 = 25;

/// Upper bound on any respawn delay, in milliseconds.
pub const MAX_DELAY_MS: u64 = 2_000;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The respawn delay for `shard`'s `attempt`-th respawn (1-based), in
/// milliseconds.
///
/// Pure in its arguments: exponential base `BASE_DELAY_MS * 2^(attempt-1)`
/// capped at [`MAX_DELAY_MS`], plus a jitter of at most a quarter of the
/// base drawn from a hash of `(seed, shard, attempt)`. The total is also
/// capped at [`MAX_DELAY_MS`].
pub fn respawn_delay_ms(seed: u64, shard: u64, attempt: u32) -> u64 {
    let doublings = attempt.saturating_sub(1).min(16);
    let base = BASE_DELAY_MS
        .saturating_mul(1u64 << doublings)
        .min(MAX_DELAY_MS);
    let mixed =
        splitmix64(seed ^ shard.wrapping_mul(0x1000_0000_01B3) ^ (u64::from(attempt) << 32));
    let jitter = mixed % (base / 4).max(1);
    (base + jitter).min(MAX_DELAY_MS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_all_arguments() {
        for attempt in 1..8 {
            assert_eq!(
                respawn_delay_ms(42, 3, attempt),
                respawn_delay_ms(42, 3, attempt)
            );
        }
        // Different seeds and shards draw different jitter for at least
        // one attempt (the schedules are not all identical).
        let a: Vec<u64> = (1..8).map(|n| respawn_delay_ms(1, 0, n)).collect();
        let b: Vec<u64> = (1..8).map(|n| respawn_delay_ms(2, 0, n)).collect();
        let c: Vec<u64> = (1..8).map(|n| respawn_delay_ms(1, 1, n)).collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bounded_for_all_attempts() {
        for shard in 0..4 {
            for attempt in 1..100 {
                let d = respawn_delay_ms(7, shard, attempt);
                assert!(d >= BASE_DELAY_MS, "attempt {attempt}: {d}");
                assert!(d <= MAX_DELAY_MS, "attempt {attempt}: {d}");
            }
        }
    }

    #[test]
    fn monotone_nondecreasing_until_the_cap() {
        // Base doubles while jitter stays under a quarter of the base,
        // so successive delays never shrink below the cap.
        for shard in 0..4 {
            let mut prev = 0;
            for attempt in 1..12 {
                let d = respawn_delay_ms(99, shard, attempt);
                assert!(d >= prev, "attempt {attempt}: {d} < {prev}");
                prev = d.min(MAX_DELAY_MS - MAX_DELAY_MS / 4);
            }
        }
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        assert!(respawn_delay_ms(0, 0, u32::MAX) <= MAX_DELAY_MS);
    }
}
