//! The checksummed line protocol shared by the worker pipe and the
//! journal.
//!
//! Every line — on the worker's stdout pipe and in the on-disk journal —
//! has the same envelope:
//!
//! ```text
//! {"crc":C,"body":{...}}
//! ```
//!
//! where `C` is the CRC-32 (ISO-HDLC) of the *compact serialization of
//! the body object*. Because the workspace's compact JSON writer is
//! deterministic, [`check`] can verify a parsed line by re-serializing
//! its body — no raw-byte bookkeeping needed — and [`stamp`] always
//! produces the same bytes for the same body, which is what makes the
//! journal byte-identical across shard counts: the supervisor appends a
//! worker's validated record line verbatim, and any worker (or any
//! resume) stamps a given cell identically.
//!
//! Body kinds:
//!
//! * `header` — first journal line; names the experiment, trial count,
//!   base seed and total cell count so `--resume` can refuse a journal
//!   written for a different campaign.
//! * `record` — one completed trial: global `cell` index, `(batch,
//!   trial)` coordinates and the integer-only `payload`.
//! * `hello` / `done` — pipe-only worker lifecycle markers bracketing
//!   the worker's assigned cell range.

use h2priv_util::crc32::crc32;
use h2priv_util::json::Json;

/// A decoded protocol line.
#[derive(Debug, Clone, PartialEq)]
pub enum LineBody {
    /// Journal header; `fields` is the full body object (including
    /// `kind`) so callers can validate campaign identity fields.
    Header {
        /// The complete header body object.
        fields: Json,
    },
    /// One completed trial.
    Record {
        /// Global cell index (`batch * trials + trial`).
        cell: u64,
        /// Batch index within the campaign.
        batch: u64,
        /// Trial index within the batch.
        trial: u64,
        /// The trial's result payload (integers and bools only, so the
        /// JSON round-trip is bit-exact).
        payload: Json,
    },
    /// Worker greeting: the half-open cell range it was assigned.
    Hello {
        /// First cell of the worker's range.
        start: u64,
        /// One past the last cell of the worker's range.
        end: u64,
    },
    /// Worker completion marker.
    Done {
        /// Number of cells the worker emitted.
        cells: u64,
    },
}

/// Builds a `header` body from campaign identity fields.
pub fn header_body(fields: &[(String, Json)]) -> Json {
    let mut obj = vec![("kind".to_string(), Json::Str("header".to_string()))];
    obj.extend(fields.iter().cloned());
    Json::Obj(obj)
}

/// Builds a `record` body for one completed trial.
pub fn record_body(cell: u64, batch: u64, trial: u64, payload: Json) -> Json {
    Json::Obj(vec![
        ("kind".to_string(), Json::Str("record".to_string())),
        ("cell".to_string(), Json::UInt(cell)),
        ("batch".to_string(), Json::UInt(batch)),
        ("trial".to_string(), Json::UInt(trial)),
        ("payload".to_string(), payload),
    ])
}

/// Builds a `hello` body for a worker assigned cells `[start, end)`.
pub fn hello_body(start: u64, end: u64) -> Json {
    Json::Obj(vec![
        ("kind".to_string(), Json::Str("hello".to_string())),
        ("start".to_string(), Json::UInt(start)),
        ("end".to_string(), Json::UInt(end)),
    ])
}

/// Builds a `done` body for a worker that emitted `cells` records.
pub fn done_body(cells: u64) -> Json {
    Json::Obj(vec![
        ("kind".to_string(), Json::Str("done".to_string())),
        ("cells".to_string(), Json::UInt(cells)),
    ])
}

/// Wraps a body in the checksummed envelope; returns one protocol line
/// (no trailing newline). Deterministic: same body, same bytes.
pub fn stamp(body: &Json) -> String {
    let compact = body.to_string_compact();
    let crc = crc32(compact.as_bytes());
    format!("{{\"crc\":{crc},\"body\":{compact}}}")
}

/// Verifies the envelope checksum of a parsed line and returns the body.
///
/// The checksum is recomputed from the body's compact re-serialization,
/// which matches the stamped bytes because the workspace writer is
/// canonical (it wrote the line in the first place).
///
/// # Errors
/// Reports a missing/mismatched checksum or a malformed envelope.
pub fn check(value: &Json) -> Result<&Json, String> {
    let stamped = value
        .get("crc")
        .and_then(Json::as_u64)
        .ok_or("missing `crc` field")?;
    let body = value.get("body").ok_or("missing `body` field")?;
    let computed = u64::from(crc32(body.to_string_compact().as_bytes()));
    if stamped != computed {
        return Err(format!(
            "checksum mismatch: stamped {stamped}, computed {computed}"
        ));
    }
    Ok(body)
}

fn field_u64(body: &Json, key: &str) -> Result<u64, String> {
    body.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer `{key}` field"))
}

/// Decodes a checksum-verified body into a [`LineBody`].
///
/// # Errors
/// Reports an unknown `kind` or missing fields.
pub fn classify(body: &Json) -> Result<LineBody, String> {
    match body.get("kind").and_then(Json::as_str) {
        Some("header") => Ok(LineBody::Header {
            fields: body.clone(),
        }),
        Some("record") => Ok(LineBody::Record {
            cell: field_u64(body, "cell")?,
            batch: field_u64(body, "batch")?,
            trial: field_u64(body, "trial")?,
            payload: body.get("payload").cloned().ok_or("missing `payload`")?,
        }),
        Some("hello") => Ok(LineBody::Hello {
            start: field_u64(body, "start")?,
            end: field_u64(body, "end")?,
        }),
        Some("done") => Ok(LineBody::Done {
            cells: field_u64(body, "cells")?,
        }),
        Some(other) => Err(format!("unknown line kind `{other}`")),
        None => Err("missing line kind".to_string()),
    }
}

/// Parses, checksum-verifies and decodes one protocol line.
///
/// # Errors
/// Reports JSON syntax errors, checksum failures and unknown shapes.
pub fn parse_line(line: &str) -> Result<LineBody, String> {
    let value = Json::parse(line).map_err(|e| format!("not valid JSON: {e}"))?;
    let body = check(&value)?;
    classify(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_then_parse_roundtrips_every_kind() {
        let payload = Json::Obj(vec![("retrans".to_string(), Json::UInt(7))]);
        let bodies = [
            header_body(&[("experiment".to_string(), Json::Str("x".to_string()))]),
            record_body(12, 2, 0, payload.clone()),
            hello_body(6, 12),
            done_body(6),
        ];
        let expected = [
            LineBody::Header {
                fields: bodies[0].clone(),
            },
            LineBody::Record {
                cell: 12,
                batch: 2,
                trial: 0,
                payload,
            },
            LineBody::Hello { start: 6, end: 12 },
            LineBody::Done { cells: 6 },
        ];
        for (body, want) in bodies.iter().zip(&expected) {
            let line = stamp(body);
            assert_eq!(&parse_line(&line).unwrap(), want, "line: {line}");
        }
    }

    #[test]
    fn stamp_is_deterministic() {
        let body = record_body(3, 0, 3, Json::Obj(vec![]));
        assert_eq!(stamp(&body), stamp(&body));
    }

    #[test]
    fn tampered_body_fails_checksum() {
        let line = stamp(&record_body(3, 0, 3, Json::Obj(vec![])));
        let tampered = line.replace("\"cell\":3", "\"cell\":4");
        let err = parse_line(&tampered).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn tampered_crc_fails_checksum() {
        let line = stamp(&done_body(5));
        let crc_end = line.find(',').unwrap();
        let tampered = format!("{{\"crc\":1{}", &line[crc_end..]);
        assert!(parse_line(&tampered).unwrap_err().contains("checksum"));
    }

    #[test]
    fn unknown_kind_and_missing_fields_are_rejected() {
        let bogus = Json::Obj(vec![("kind".to_string(), Json::Str("meta".to_string()))]);
        assert!(parse_line(&stamp(&bogus)).unwrap_err().contains("unknown"));
        let partial = Json::Obj(vec![
            ("kind".to_string(), Json::Str("record".to_string())),
            ("cell".to_string(), Json::UInt(1)),
        ]);
        assert!(parse_line(&stamp(&partial)).unwrap_err().contains("batch"));
        assert!(parse_line("{\"body\":{}}").unwrap_err().contains("crc"));
    }
}
