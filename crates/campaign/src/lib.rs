//! Crash-safe sharded campaign runner.
//!
//! `h2priv_util::pool` parallelizes trials *within* a process; this
//! crate is the same guarantee one level up: a campaign's `(batch,
//! trial)` space is sharded across supervised child **worker
//! processes** (the bench bins re-invoked in `--shard-worker` mode),
//! each worker streams its per-trial results as checksummed jsonl over
//! a pipe, and the supervisor journals and folds them **strictly in
//! global cell order** — so the journal bytes and the final report are
//! identical at any shard count and across any crash/kill/resume
//! schedule.
//!
//! Robustness model:
//!
//! * [`journal`] — an append-only jsonl journal, one CRC-32-stamped
//!   line per record, flushed per append. A crash can only ever lose
//!   the partial final line; recovery truncates to the last complete
//!   record and the campaign resumes from there, re-executing only the
//!   missing cells.
//! * [`supervisor`] — per-shard heartbeat timeouts (a stalled worker is
//!   killed and its range reassigned), bounded seed-deterministic
//!   exponential respawn backoff ([`backoff`]), and a poisoned-range
//!   detector: a cell that keeps killing its worker fails the campaign
//!   with a structured error naming the range instead of looping
//!   forever.
//! * [`inject`] — a deterministic crash-injection schedule
//!   (`--inject-kill shard=N,trial=K`, `--inject-stall …`, `repeat`
//!   entries) that turns "kill a worker at every batch boundary,
//!   resume, diff against the uninterrupted run" into a repeatable
//!   test.
//!
//! Determinism argument: workers race only over *when* their records
//! arrive; every record names its global cell index, the supervisor
//! releases records to the journal and the fold through an
//! [`order::OrderedSink`] keyed by that index, and duplicate or
//! already-journaled cells are dropped. The journal is therefore always
//! a strict prefix of the campaign's canonical record sequence — which
//! is what makes resume a simple "count the prefix, run the rest".

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backoff;
pub mod inject;
pub mod journal;
pub mod order;
pub mod record;
pub mod supervisor;
