//! Deterministic crash-injection schedules.
//!
//! `--inject-kill shard=1,trial=12` tells the supervisor: when (a worker
//! on) shard 1 is about to execute global cell 12, make it die there.
//! The supervisor does not reach into the child — at spawn time it scans
//! the schedule for entries matching the worker's shard and assigned
//! cell range and passes them down as bare `--inject-kill 12` worker
//! flags; the worker then calls `process::exit(101)` immediately before
//! running that cell (or, for `--inject-stall`, sleeps until the
//! heartbeat timeout kills it).
//!
//! Entries are one-shot by default — consumed at the spawn that carries
//! them, so the respawned worker completes the range and the campaign
//! converges. A `repeat` entry is never consumed: every (re)spawn
//! covering the cell inherits the injection, which is how the
//! poisoned-range policy test manufactures a cell that *always* crashes
//! its worker.

/// What the injected fault does to the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectKind {
    /// Worker exits with a nonzero status immediately before the cell.
    Kill,
    /// Worker hangs before the cell until the heartbeat timeout fires.
    Stall,
}

/// One parsed injection entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectSpec {
    /// Restrict the injection to this shard slot; `None` matches any.
    pub shard: Option<usize>,
    /// Global cell index the fault fires at.
    pub cell: u64,
    /// Re-arm on every spawn instead of firing once.
    pub repeat: bool,
}

impl InjectSpec {
    /// Parses `shard=N,trial=K[,repeat]`; `trial=K` alone (or a bare
    /// `K`) matches any shard.
    ///
    /// # Errors
    /// Reports unknown keys, non-numeric values and a missing `trial`.
    pub fn parse(s: &str) -> Result<InjectSpec, String> {
        let mut shard = None;
        let mut cell = None;
        let mut repeat = false;
        for part in s.split(',') {
            let part = part.trim();
            if part == "repeat" {
                repeat = true;
            } else if let Some(v) = part.strip_prefix("shard=") {
                shard = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad shard number `{v}`"))?,
                );
            } else if let Some(v) = part.strip_prefix("trial=") {
                cell = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("bad trial number `{v}`"))?,
                );
            } else if let Ok(v) = part.parse::<u64>() {
                cell = Some(v);
            } else {
                return Err(format!(
                    "bad injection spec `{part}` (expected shard=N,trial=K[,repeat])"
                ));
            }
        }
        let cell = cell.ok_or("injection spec needs a trial=K (or bare K)")?;
        Ok(InjectSpec {
            shard,
            cell,
            repeat,
        })
    }
}

struct Entry {
    kind: InjectKind,
    spec: InjectSpec,
    used: bool,
}

/// A mutable schedule of pending injections, consumed at worker spawn.
#[derive(Default)]
pub struct InjectSchedule {
    entries: Vec<Entry>,
}

impl InjectSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an entry to the schedule.
    pub fn add(&mut self, kind: InjectKind, spec: InjectSpec) {
        self.entries.push(Entry {
            kind,
            spec,
            used: false,
        });
    }

    /// True when no entries were ever added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Collects the injections a worker spawned on `shard` for cells
    /// `[range.0, range.1)` must carry, consuming one-shot entries.
    pub fn take(&mut self, shard: usize, range: (u64, u64)) -> Vec<(InjectKind, u64)> {
        let mut out = Vec::new();
        for entry in &mut self.entries {
            if entry.used && !entry.spec.repeat {
                continue;
            }
            let shard_ok = entry.spec.shard.is_none() || entry.spec.shard == Some(shard);
            if shard_ok && entry.spec.cell >= range.0 && entry.spec.cell < range.1 {
                entry.used = true;
                out.push((entry.kind, entry.spec.cell));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_forms() {
        assert_eq!(
            InjectSpec::parse("shard=1,trial=12").unwrap(),
            InjectSpec {
                shard: Some(1),
                cell: 12,
                repeat: false
            }
        );
        assert_eq!(
            InjectSpec::parse("trial=3,repeat").unwrap(),
            InjectSpec {
                shard: None,
                cell: 3,
                repeat: true
            }
        );
        assert_eq!(
            InjectSpec::parse("7").unwrap(),
            InjectSpec {
                shard: None,
                cell: 7,
                repeat: false
            }
        );
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(InjectSpec::parse("shard=1").unwrap_err().contains("trial"));
        assert!(InjectSpec::parse("trial=x").unwrap_err().contains("bad"));
        assert!(InjectSpec::parse("bogus=1").unwrap_err().contains("bogus"));
    }

    #[test]
    fn one_shot_entries_fire_exactly_once() {
        let mut sched = InjectSchedule::new();
        sched.add(InjectKind::Kill, InjectSpec::parse("trial=5").unwrap());
        assert_eq!(sched.take(0, (0, 10)), [(InjectKind::Kill, 5)]);
        // The respawn covering the same range gets nothing.
        assert!(sched.take(0, (5, 10)).is_empty());
    }

    #[test]
    fn repeat_entries_rearm_on_every_spawn() {
        let mut sched = InjectSchedule::new();
        sched.add(
            InjectKind::Kill,
            InjectSpec::parse("trial=5,repeat").unwrap(),
        );
        for _ in 0..3 {
            assert_eq!(sched.take(1, (0, 10)), [(InjectKind::Kill, 5)]);
        }
    }

    #[test]
    fn shard_and_range_filters_apply() {
        let mut sched = InjectSchedule::new();
        sched.add(
            InjectKind::Stall,
            InjectSpec::parse("shard=2,trial=5").unwrap(),
        );
        assert!(sched.take(1, (0, 10)).is_empty(), "wrong shard");
        assert!(sched.take(2, (6, 10)).is_empty(), "cell outside range");
        assert_eq!(sched.take(2, (0, 10)), [(InjectKind::Stall, 5)]);
    }
}
