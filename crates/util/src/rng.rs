//! Deterministic pseudo-random number generation.
//!
//! [`Xoshiro256PlusPlus`] reimplements the exact algorithms `rand 0.8` uses
//! for `SmallRng` on 64-bit platforms: the xoshiro256++ core generator of
//! Blackman & Vigna, `seed_from_u64` expansion via SplitMix64, the
//! multiply-based 53-bit `[0, 1)` float draw, and widening-multiply
//! rejection sampling for integer ranges. Matching those bit-for-bit is
//! load-bearing: every experiment in EXPERIMENTS.md pins a `u64` seed, and
//! the recorded tables/figures are only reproducible if the stream behind
//! each seed is unchanged.

/// A xoshiro256++ generator, drop-in compatible with `rand 0.8`'s
/// `SmallRng` (64-bit platforms) for the draws used in this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator from 32 seed bytes (little-endian words).
    ///
    /// An all-zero seed would make xoshiro256++ emit zeros forever, so it
    /// is remapped through [`Xoshiro256PlusPlus::seed_from_u64`] with seed
    /// 0, exactly as `rand` does.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        if seed.iter().all(|&b| b == 0) {
            return Self::seed_from_u64(0);
        }
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Xoshiro256PlusPlus { s }
    }

    /// Creates a generator from a `u64` seed via SplitMix64 expansion
    /// (identical to `rand 0.8`'s `Xoshiro256PlusPlus::seed_from_u64`).
    pub fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 random bits. The upper half of a 64-bit draw is used
    /// because xoshiro's low bits have weak linear structure (and because
    /// that is what `rand` does).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` using the top 53 bits of one draw
    /// (`rand`'s `Standard` distribution for `f64`).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        let value = self.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64` in `[lo, hi]` inclusive, using widening-multiply
    /// rejection sampling (`rand`'s `UniformInt::sample_single_inclusive`).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "gen_range_u64: lo > hi");
        let range = hi.wrapping_sub(lo).wrapping_add(1);
        if range == 0 {
            // Full-range request: every draw is acceptable.
            return self.next_u64();
        }
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let m = u128::from(v) * u128::from(range);
            let hi_word = (m >> 64) as u64;
            let lo_word = m as u64;
            if lo_word <= zone {
                return lo.wrapping_add(hi_word);
            }
        }
    }

    /// A uniform `f64` in `[lo, hi)` (`rand`'s `UniformFloat::sample_single`:
    /// a `[1, 2)` mantissa draw rescaled by multiply-add).
    ///
    /// # Panics
    /// Panics if the bounds are not finite or `lo >= hi`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "gen_range_f64: bad bounds"
        );
        let scale = hi - lo;
        loop {
            // A value in [1, 2): random 52-bit mantissa with exponent 0.
            let fraction = self.next_u64() >> 12;
            let value1_2 = f64::from_bits((1023u64 << 52) | fraction);
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + lo;
            // Rounding can in principle push `res` to `hi`; redraw then.
            // (Never taken for the parameter ranges used in this workspace.)
            if res < hi {
                return res;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors computed with an independent implementation of the
    // published SplitMix64 + xoshiro256++ algorithms (Blackman & Vigna),
    // the same pair `rand 0.8` vendors for `SmallRng`.
    #[test]
    fn seed_zero_known_answer() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                0x53175d61490b23df,
                0x61da6f3dc380d507,
                0x5c0fdf91ec9a7bfc,
                0x02eebf8c3bbe5e1a,
            ]
        );
    }

    #[test]
    fn seed_one_known_answer() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(1);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                0xcfc5d07f6f03c29b,
                0xbf424132963fe08d,
                0x19a37d5757aaf520,
                0xbf08119f05cd56d6,
            ]
        );
    }

    #[test]
    fn all_zero_seed_is_remapped() {
        let a = Xoshiro256PlusPlus::from_seed([0u8; 32]);
        let b = Xoshiro256PlusPlus::seed_from_u64(0);
        assert_eq!(a, b);
    }

    #[test]
    fn f64_draws_are_unit_interval() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / f64::from(n);
        assert!((0.49..0.51).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn range_u64_bounds_inclusive() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.gen_range_u64(10, 13);
            assert!((10..=13).contains(&v));
            seen_lo |= v == 10;
            seen_hi |= v == 13;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn range_u64_full_range_does_not_loop() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut any_large = false;
        for _ in 0..64 {
            any_large |= r.gen_range_u64(0, u64::MAX) > u64::MAX / 2;
        }
        assert!(any_large);
    }

    #[test]
    fn range_u64_degenerate_single_value() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(5);
        assert_eq!(r.gen_range_u64(99, 99), 99);
    }

    #[test]
    fn range_f64_stays_in_half_open_interval() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = r.gen_range_f64(f64::MIN_POSITIVE, 1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(123);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(123);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
