//! Minimal JSON support: a value type, the [`ToJson`] trait, a writer with
//! compact and pretty (serde_json-style: two-space indent, `": "` key
//! separator) output, and a small recursive-descent parser for reading back
//! the workspace's own output (trace archives).
//!
//! Floats are rendered with Rust's shortest-round-trip formatting and a
//! trailing `.0` for integral values, matching what `serde_json`'s ryu
//! backend produced for the golden result files under `results/`.
//! Non-finite floats serialize as `null`, as serde_json did.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (needed for `u64` values above `i64::MAX`).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            Json::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Pretty serialization: two-space indent, one field/element per line.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Parses a JSON document; the whole input must be consumed (trailing
    /// whitespace allowed).
    ///
    /// # Errors
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is shortest-round-trip with a `.0` suffix on integral
        // values — the same surface form ryu gave the golden fixtures.
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not produced by our writer;
                        // lone surrogates become the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar value.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected number at byte {start}"));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("bad number `{text}`"))
}

/// Conversion to a [`Json`] value; the replacement for `serde::Serialize`
/// throughout the workspace.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! to_json_unsigned {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::UInt(u64::from(*self))
            }
        }
    )*};
}
to_json_unsigned!(u8, u16, u32, u64);

macro_rules! to_json_signed {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Int(i64::from(*self))
            }
        }
    )*};
}
to_json_signed!(i8, i16, i32, i64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<K: AsRef<str>, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_json()))
                .collect(),
        )
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Implements [`ToJson`] for a struct as an object of its named fields, or
/// for a fieldless enum as its variant name (matching serde's derive
/// output for both shapes).
///
/// ```
/// use h2priv_util::json::ToJson;
/// use h2priv_util::impl_to_json;
///
/// struct Point { x: u32, y: u32 }
/// impl_to_json!(struct Point { x, y });
///
/// enum Side { Left, Right }
/// impl_to_json!(enum Side { Left, Right });
///
/// assert_eq!(Point { x: 1, y: 2 }.to_json().to_string_compact(), r#"{"x":1,"y":2}"#);
/// assert_eq!(Side::Left.to_json().to_string_compact(), r#""Left""#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    (struct $ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
    (newtype $ty:ty) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::ToJson::to_json(&self.0)
            }
        }
    };
    (enum $ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $(Self::$variant =>
                        $crate::json::Json::Str(stringify!($variant).to_string()),)+
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_escaping() {
        let v = Json::Str("a\"b\\c\nd\te\u{01}".into());
        assert_eq!(v.to_string_compact(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn nested_pretty_matches_serde_json_layout() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("x".into())),
            (
                "values".into(),
                Json::Arr(vec![Json::UInt(1), Json::UInt(2)]),
            ),
            (
                "inner".into(),
                Json::Obj(vec![("flag".into(), Json::Bool(true))]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let expected = "{\n  \"name\": \"x\",\n  \"values\": [\n    1,\n    2\n  ],\n  \
                        \"inner\": {\n    \"flag\": true\n  },\n  \"empty\": []\n}";
        assert_eq!(v.to_string_pretty(), expected);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(Json::Float(26.0).to_string_compact(), "26.0");
        assert_eq!(
            Json::Float(45.01718213058418).to_string_compact(),
            "45.01718213058418"
        );
        assert_eq!(Json::Float(0.5).to_string_compact(), "0.5");
        assert_eq!(Json::Float(-3.25).to_string_compact(), "-3.25");
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn integer_width_and_sign() {
        assert_eq!(
            Json::UInt(u64::MAX).to_string_compact(),
            "18446744073709551615"
        );
        assert_eq!(Json::Int(-42).to_string_compact(), "-42");
    }

    #[test]
    fn parse_roundtrip_compact_and_pretty() {
        let v = Json::Obj(vec![
            ("t_ns".into(), Json::UInt(12_345)),
            ("dir".into(), Json::Str("ServerToClient".into())),
            ("ratio".into(), Json::Float(0.125)),
            (
                "tags".into(),
                Json::Arr(vec![Json::Null, Json::Bool(false)]),
            ),
        ]);
        assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_escapes() {
        let v = Json::parse(r#""line\nbreak A""#).unwrap();
        assert_eq!(v, Json::Str("line\nbreak A".into()));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("not json").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn parse_negative_and_float_numbers() {
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("7").unwrap(), Json::UInt(7));
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::Float(2500.0));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 1, "b": "x", "c": [true], "d": 1.5}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("d").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn option_and_collections() {
        assert_eq!(Some(3u32).to_json().to_string_compact(), "3");
        assert_eq!(Option::<u32>::None.to_json().to_string_compact(), "null");
        assert_eq!(vec![1u8, 2].to_json().to_string_compact(), "[1,2]");
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 9u64);
        assert_eq!(m.to_json().to_string_compact(), r#"{"k":9}"#);
    }
}
