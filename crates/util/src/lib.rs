//! Zero-dependency substrate for the h2priv workspace.
//!
//! Everything the simulator previously pulled from crates.io lives here in
//! a small, auditable form so the whole reproduction builds and tests
//! offline (`cargo build --offline`) with an empty registry cache:
//!
//! * [`rng`] — a deterministic xoshiro256++ generator that is bit-compatible
//!   with `rand 0.8`'s `SmallRng` on 64-bit platforms, so every hardcoded
//!   experiment seed keeps producing the numbers recorded in EXPERIMENTS.md.
//! * [`json`] — a minimal JSON value type, [`json::ToJson`] trait, writer
//!   (compact and serde_json-style pretty) and parser, replacing the
//!   `serde`/`serde_json` derives (the workspace only ever round-trips its
//!   own output).
//! * [`bytes`] — cheaply-cloneable [`bytes::Bytes`] and growable
//!   [`bytes::BytesMut`] built on `Arc<[u8]>`/`Vec<u8>`.
//! * [`check`] — a seeded, shrink-free property-test harness replacing the
//!   `proptest` dev-dependency.
//! * [`telemetry`] — a deterministic observability layer: structured
//!   trace events timestamped in simulation time, per-trial metric
//!   registries, and sim-time spans, all off by default and folded in
//!   submission order so traces are byte-identical at any `--jobs` level.
//! * [`pool`] — a deterministic `std::thread::scope` work pool that fans
//!   independent seed-keyed jobs across cores and returns results in
//!   submission order, so parallel experiment runs stay byte-identical
//!   to sequential ones.
//! * [`jsonl`] — a jsonl reader that tolerates a truncated final line
//!   (a crashed writer's partial append), reporting it as recoverable
//!   with a byte offset instead of a hard parse error.
//! * [`crc32`] — CRC-32 (IEEE) for the campaign journal's per-record
//!   checksums.
//! * [`smallvec`] — an inline-capacity vector for the packet hot path,
//!   so per-datagram frame lists never touch the heap in steady state.
//! * [`alloc`] — a counting global allocator (opt-in per binary) with
//!   per-thread counters, turning "zero allocations in steady state"
//!   into a number a regression test can pin.

pub mod alloc;
pub mod bytes;
pub mod check;
pub mod crc32;
pub mod fxhash;
pub mod json;
pub mod jsonl;
pub mod pool;
pub mod rng;
pub mod smallvec;
pub mod telemetry;
