//! A seeded, shrink-free property-test harness replacing `proptest`.
//!
//! [`run`] executes a property closure against a fixed number of generated
//! cases. Case seeds are derived deterministically from the property name,
//! so every run (and every machine) exercises the same inputs — failures
//! are reproducible by construction, no shrinking or persistence files
//! needed. On failure the case index and seed are printed before the panic
//! propagates.

use crate::rng::Xoshiro256PlusPlus;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Source of generated values for one property case.
pub struct Gen {
    rng: Xoshiro256PlusPlus,
}

impl Gen {
    /// A generator for an explicit seed (used by [`run`]; also handy for
    /// reproducing one failing case in isolation).
    pub fn from_seed(seed: u64) -> Gen {
        Gen {
            rng: Xoshiro256PlusPlus::seed_from_u64(seed),
        }
    }

    /// A uniform `u64` in `[lo, hi]` inclusive.
    pub fn u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range_u64(lo, hi)
    }

    /// A uniform `u32` in `[lo, hi]` inclusive.
    pub fn u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// A uniform `u16` in `[lo, hi]` inclusive.
    pub fn u16(&mut self, lo: u16, hi: u16) -> u16 {
        self.u64(u64::from(lo), u64::from(hi)) as u16
    }

    /// A uniform `u8` in `[lo, hi]` inclusive.
    pub fn u8(&mut self, lo: u8, hi: u8) -> u8 {
        self.u64(u64::from(lo), u64::from(hi)) as u8
    }

    /// A uniform `usize` in `[lo, hi]` inclusive.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.u64(lo as u64, hi as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        self.rng.gen_f64()
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range_f64(lo, hi)
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.gen_f64() < p
    }

    /// A byte vector with length uniform in `[0, max_len]`.
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.usize(0, max_len);
        (0..len).map(|_| self.u8(0, u8::MAX)).collect()
    }

    /// An ASCII string with length uniform in `[0, max_len]`.
    pub fn ascii_string(&mut self, max_len: usize) -> String {
        let len = self.usize(0, max_len);
        (0..len).map(|_| char::from(self.u8(0x20, 0x7e))).collect()
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.usize(0, items.len() - 1)]
    }
}

/// FNV-1a, used to give each named property its own seed stream.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `property` against `cases` deterministic generated cases.
///
/// # Panics
/// Re-raises the property's panic, after printing the failing case index
/// and seed (pass the seed to [`Gen::from_seed`] to replay just that case).
pub fn run(name: &str, cases: u32, mut property: impl FnMut(&mut Gen)) {
    let base = fnv1a(name);
    for case in 0..cases {
        let seed = base ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut g = Gen::from_seed(seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| property(&mut g))) {
            eprintln!("property `{name}` failed at case {case}/{cases} (seed {seed:#x})");
            resume_unwind(panic);
        }
    }
}

/// Asserts a property-level condition. An alias for `assert!` kept for
/// parity with the `proptest` tests this harness replaced.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts property-level equality. An alias for `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_number_of_cases() {
        let mut n = 0u32;
        run("counter", 256, |_| n += 1);
        assert_eq!(n, 256);
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut first = Vec::new();
        run("determinism", 16, |g| first.push(g.u64(0, u64::MAX)));
        let mut second = Vec::new();
        run("determinism", 16, |g| second.push(g.u64(0, u64::MAX)));
        assert_eq!(first, second);
    }

    #[test]
    fn different_properties_get_different_streams() {
        let mut a = Vec::new();
        run("stream-a", 8, |g| a.push(g.u64(0, u64::MAX)));
        let mut b = Vec::new();
        run("stream-b", 8, |g| b.push(g.u64(0, u64::MAX)));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        run("failing", 256, |g| {
            if g.u64(0, 9) == 3 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn generators_respect_bounds() {
        run("bounds", 256, |g| {
            let lo = g.u64(0, 100);
            let hi = lo + g.u64(0, 100);
            let v = g.u64(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
            let s = g.ascii_string(32);
            prop_assert!(s.len() <= 32);
            prop_assert!(s.chars().all(|c| c.is_ascii_graphic() || c == ' '));
            let b = g.bytes(64);
            prop_assert!(b.len() <= 64);
        });
    }
}
