//! A jsonl (one JSON document per line) reader that tolerates a
//! truncated final line.
//!
//! Both jsonl surfaces of the workspace — `--trace` archives checked by
//! `trace_check`, and the campaign journal replayed on `--resume` — are
//! written by append-and-flush loops. A crash (power loss, `kill -9`, a
//! full disk) can leave a *partial final line*: bytes of a record whose
//! terminating newline never made it to disk, possibly cut mid-record or
//! even mid-UTF-8-codepoint. That is a recoverable condition — every
//! newline-terminated line before it is intact — and must be reported as
//! such (with the byte offset where the partial write starts, so a
//! recovery path can truncate to it), not as a hard parse error.
//!
//! A *complete* line that fails to parse is different: the file was
//! corrupted in place, and [`read_tolerant`] reports it as a fatal
//! [`JsonlError`].

use crate::json::Json;

/// A partial final line: bytes after the last newline that do not form a
/// complete record. Recovery = truncate the file to `byte_offset` and
/// re-append.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruncatedTail {
    /// Byte offset where the partial line starts (== the file's "good"
    /// length).
    pub byte_offset: usize,
    /// Length of the partial tail in bytes.
    pub len: usize,
}

/// The successfully-read portion of a jsonl file.
#[derive(Debug)]
pub struct JsonlRead {
    /// One parsed value per complete line, in file order.
    pub records: Vec<Json>,
    /// The partial final line, when the file ends mid-record; `None`
    /// for a cleanly-terminated file.
    pub truncated: Option<TruncatedTail>,
}

/// A fatal jsonl defect: a *complete* line that is not a valid JSON
/// document (or not valid UTF-8). `line` is 1-based; `byte_offset` is
/// where the offending line starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlError {
    /// 1-based line number of the corrupt line.
    pub line: usize,
    /// Byte offset where the corrupt line starts.
    pub byte_offset: usize,
    /// Human-readable description of the defect.
    pub message: String,
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {} (byte {}): {}",
            self.line, self.byte_offset, self.message
        )
    }
}

/// Reads a jsonl buffer, tolerating a truncated final line.
///
/// Every newline-terminated line must be valid UTF-8 and parse as one
/// JSON document — a violation is a fatal [`JsonlError`] (the file was
/// corrupted in place, not merely cut short). Bytes after the last
/// newline are reported as a recoverable [`TruncatedTail`] instead of
/// being parsed: a record is not complete until its newline is on disk,
/// and the tail may end mid-record or mid-codepoint (it is never
/// UTF-8-decoded at all).
///
/// # Errors
/// Returns the first corrupt complete line.
pub fn read_tolerant(bytes: &[u8]) -> Result<JsonlRead, JsonlError> {
    let mut records = Vec::new();
    let mut line_start = 0usize;
    let mut line_no = 0usize;
    while let Some(nl) = bytes[line_start..].iter().position(|&b| b == b'\n') {
        let line = &bytes[line_start..line_start + nl];
        line_no += 1;
        // Tolerate blank lines (a flush boundary artifact), but a
        // non-empty complete line must parse.
        if !line.is_empty() {
            let text = std::str::from_utf8(line).map_err(|_| JsonlError {
                line: line_no,
                byte_offset: line_start,
                message: "complete line is not valid UTF-8".to_string(),
            })?;
            let value = Json::parse(text).map_err(|e| JsonlError {
                line: line_no,
                byte_offset: line_start,
                message: format!("not valid JSON: {e}"),
            })?;
            records.push(value);
        }
        line_start += nl + 1;
    }
    let truncated = if line_start < bytes.len() {
        Some(TruncatedTail {
            byte_offset: line_start,
            len: bytes.len() - line_start,
        })
    } else {
        None
    };
    Ok(JsonlRead { records, truncated })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_file_has_no_tail() {
        let read = read_tolerant(b"{\"a\":1}\n{\"a\":2}\n").unwrap();
        assert_eq!(read.records.len(), 2);
        assert_eq!(read.records[1].get("a").and_then(Json::as_u64), Some(2));
        assert!(read.truncated.is_none());
    }

    #[test]
    fn empty_file_is_clean() {
        let read = read_tolerant(b"").unwrap();
        assert!(read.records.is_empty());
        assert!(read.truncated.is_none());
    }

    #[test]
    fn mid_record_truncation_is_recoverable() {
        // The writer died after 9 bytes of the second record.
        let read = read_tolerant(b"{\"a\":1}\n{\"a\":222").unwrap();
        assert_eq!(read.records.len(), 1);
        assert_eq!(
            read.truncated,
            Some(TruncatedTail {
                byte_offset: 8,
                len: 8
            })
        );
    }

    #[test]
    fn unterminated_but_parseable_tail_is_still_truncated() {
        // Even a tail that happens to parse is not a committed record:
        // its newline never hit the disk, so it may be a prefix of a
        // longer record (e.g. `{"a":2}` of `{"a":27}`).
        let read = read_tolerant(b"{\"a\":1}\n{\"a\":2}").unwrap();
        assert_eq!(read.records.len(), 1);
        assert_eq!(read.truncated.unwrap().byte_offset, 8);
    }

    #[test]
    fn mid_codepoint_truncation_is_recoverable() {
        // "é" is 0xC3 0xA9; cut between the two bytes. The tail must
        // not be UTF-8-decoded, only measured.
        let mut bytes = b"{\"s\":\"ok\"}\n{\"s\":\"".to_vec();
        bytes.push(0xC3);
        let read = read_tolerant(&bytes).unwrap();
        assert_eq!(read.records.len(), 1);
        let tail = read.truncated.unwrap();
        assert_eq!(tail.byte_offset, 11);
        assert_eq!(tail.len, bytes.len() - 11);
    }

    #[test]
    fn corrupt_complete_line_is_fatal() {
        let err = read_tolerant(b"{\"a\":1}\nnot json\n{\"a\":3}\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.byte_offset, 8);
        assert!(err.message.contains("not valid JSON"), "{}", err.message);
    }

    #[test]
    fn invalid_utf8_in_complete_line_is_fatal() {
        let err = read_tolerant(&[0xFF, 0xFE, b'\n']).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("UTF-8"));
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let read = read_tolerant(b"{\"a\":1}\n\n{\"a\":2}\n").unwrap();
        assert_eq!(read.records.len(), 2);
        assert!(read.truncated.is_none());
    }
}
