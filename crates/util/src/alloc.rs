//! Allocation audit: a counting global allocator and per-thread counters.
//!
//! The zero-alloc claim on the simulator's packet path is worthless as a
//! comment — it regresses the moment someone adds a convenient `clone()`.
//! This module turns it into a pinned number: a binary or integration
//! test opts in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: h2priv_util::alloc::CountingAlloc = h2priv_util::alloc::CountingAlloc::new();
//! ```
//!
//! and then reads [`thread_allocs`] before/after the code under audit.
//! Counters are **per thread**, so parallel trial workers and the test
//! harness's own threads never pollute each other's measurements. When no
//! counting allocator is installed the counters simply stay at zero —
//! the functions are always safe to call.
//!
//! The counter is a `thread_local!` `Cell<u64>` with a `const` initializer,
//! so reading or bumping it never allocates (which would recurse into the
//! allocator).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static THREAD_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A [`System`]-backed allocator that counts allocations per thread.
///
/// Reallocations count as one allocation (they may move the block);
/// deallocations are not counted — the audit pins allocation *pressure*,
/// not net leaks.
pub struct CountingAlloc;

impl CountingAlloc {
    /// The allocator value to install with `#[global_allocator]`.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates every operation to `System` unchanged; the only
// addition is a thread-local counter bump, which does not allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[inline]
fn bump(bytes: usize) {
    THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
    THREAD_ALLOC_BYTES.with(|c| c.set(c.get() + bytes as u64));
}

/// Allocations made by the current thread since it started (0 when no
/// [`CountingAlloc`] is installed).
pub fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

/// Bytes requested by the current thread's allocations since it started
/// (0 when no [`CountingAlloc`] is installed).
pub fn thread_alloc_bytes() -> u64 {
    THREAD_ALLOC_BYTES.with(|c| c.get())
}

/// Runs `f` and returns `(f(), allocations, bytes)` made by this thread
/// during the call.
pub fn counting<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let a0 = thread_allocs();
    let b0 = thread_alloc_bytes();
    let out = f();
    (out, thread_allocs() - a0, thread_alloc_bytes() - b0)
}

#[cfg(test)]
mod tests {
    use super::*;

    // No global allocator is installed in the unit-test binary, so the
    // counters must read zero and `counting` must still work.
    #[test]
    fn counters_are_zero_without_installation() {
        let ((), allocs, bytes) = counting(|| {
            let v = vec![1u8; 4_096];
            std::hint::black_box(&v);
        });
        assert_eq!(allocs, 0);
        assert_eq!(bytes, 0);
    }
}
