//! A fast, non-cryptographic hasher for hot-path maps keyed by small
//! integers (timer handles, stream ids).
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of
//! nanoseconds per lookup; the simulator's inner loop does several map
//! operations per event on keys an attacker cannot choose, so a
//! multiply-rotate hash (the `FxHash` scheme used by rustc and Firefox)
//! is safe and markedly faster.
//!
//! Determinism note: hash values depend only on the key bytes — no
//! per-process random seed — so map *iteration* order is stable across
//! runs. Hot-path users must still never let iteration order become
//! observable (sort first), because the order changes whenever the
//! hasher or capacity schedule does.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher over the key's bytes.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth's multiplicative constant (2^64 / golden ratio, odd).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (word, tail) = rest.split_at(8);
            self.add_to_hash(u64::from_le_bytes(word.try_into().expect("8 bytes")));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips_integer_keys() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for k in 0..1_000u64 {
            m.insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k as u32);
        }
        assert_eq!(m.len(), 1_000);
        for k in 0..1_000u64 {
            assert_eq!(
                m.remove(&k.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                Some(k as u32)
            );
        }
        assert!(m.is_empty());
    }

    #[test]
    fn hash_is_deterministic_across_hasher_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, longer than 8");
        let mut d = FxHasher::default();
        d.write(b"hello world, longer than 8");
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn nearby_integers_spread() {
        // Consecutive keys must not collapse onto consecutive buckets'
        // low bits (the failure mode of an identity hash).
        let hashes: Vec<u64> = (0..16u64)
            .map(|k| {
                let mut h = FxHasher::default();
                h.write_u64(k);
                h.finish()
            })
            .collect();
        let distinct_high: FxHashSet<u64> = hashes.iter().map(|h| h >> 32).collect();
        assert_eq!(distinct_high.len(), 16, "high bits must differ");
    }
}
