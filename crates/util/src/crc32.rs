//! CRC-32 (IEEE 802.3, the zlib/`cksum -o 3` polynomial) over byte
//! slices. The campaign journal stamps every record with this checksum
//! so a resumed run can distinguish "the tail of the file is a partial
//! append" (recoverable) from "a record was corrupted in place" (fatal).
//!
//! Table-driven, one table, built at first use; this is nowhere near a
//! hot path (one call per journal record).

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320; // reflected 0x04C11DB7

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0u32;
        while i < 256 {
            let mut c = i;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i as usize] = c;
            i += 1;
        }
        t
    })
}

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"{\"batch\":1,\"trial\":7}");
        assert_ne!(base, crc32(b"{\"batch\":1,\"trial\":6}"));
        assert_ne!(base, crc32(b"{\"batch\":0,\"trial\":7}"));
    }
}
