//! Deterministic observability: structured trace events, per-trial
//! metric registries, and sim-time spans.
//!
//! Everything here is driven by **virtual simulation time** — no wall
//! clocks anywhere — so a trace collected at `--jobs 8` is byte-identical
//! to the same seeds at `--jobs 1`. The design has three layers:
//!
//! * A pair of global enable flags ([`set_trace_enabled`],
//!   [`set_metrics_enabled`]), both off by default. With both off, every
//!   emission call is a thread-local read and a branch; no allocation, no
//!   locking, and no RNG perturbation, so default runs keep producing the
//!   exact bytes recorded in `results/*.json`.
//! * A thread-local **trial collector** ([`trial_slot`]) installed for
//!   the duration of one trial closure. The simulator publishes the
//!   virtual clock through [`set_sim_now`]; instrumented components call
//!   [`emit`]/[`count`]/[`observe`] without threading a handle through
//!   every constructor. Trials run whole on one pool worker, so the
//!   thread-local is never shared.
//! * A global **registry** keyed by `(batch, trial)` — batches are opened
//!   on the main thread in program order ([`open_batch`]), trial indices
//!   are the pool submission indices — so draining the registry sorted by
//!   key reproduces submission order no matter which worker finished
//!   first. This is the same fold discipline the result aggregates use.

use crate::json::Json;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A structured field value on a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (owned; use sparingly on hot paths).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl Value {
    fn to_json(&self) -> Json {
        match self {
            Value::U64(v) => Json::UInt(*v),
            Value::I64(v) => Json::Int(*v),
            Value::F64(v) => Json::Float(*v),
            Value::Bool(v) => Json::Bool(*v),
            Value::Str(v) => Json::Str(v.clone()),
        }
    }
}

/// One structured trace event, timestamped in virtual nanoseconds.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Virtual time (nanoseconds since trial start).
    pub t_ns: u64,
    /// Emitting component ("netsim", "tcp", "quic", "h2", "attack", …).
    pub component: &'static str,
    /// Event kind within the component ("rto", "drop_loss", …).
    pub kind: &'static str,
    /// HTTP/2- or QUIC-stream id, when the event concerns one.
    pub stream: Option<u64>,
    /// Sequence/packet number, when the event concerns one.
    pub seq: Option<u64>,
    /// Additional key/value payload.
    pub fields: Vec<(&'static str, Value)>,
}

impl TraceEvent {
    /// Renders the event as one compact JSON object (a jsonl line,
    /// without the trailing newline), tagged with its registry slot.
    pub fn to_json_line(&self, label: &str, trial: u64) -> String {
        let mut obj = vec![
            ("batch".to_string(), Json::Str(label.to_string())),
            ("trial".to_string(), Json::UInt(trial)),
            ("t_ns".to_string(), Json::UInt(self.t_ns)),
            (
                "component".to_string(),
                Json::Str(self.component.to_string()),
            ),
            ("kind".to_string(), Json::Str(self.kind.to_string())),
        ];
        if let Some(s) = self.stream {
            obj.push(("stream".to_string(), Json::UInt(s)));
        }
        if let Some(s) = self.seq {
            obj.push(("seq".to_string(), Json::UInt(s)));
        }
        if !self.fields.is_empty() {
            let fields = self
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect();
            obj.push(("fields".to_string(), Json::Obj(fields)));
        }
        Json::Obj(obj).to_string_compact()
    }
}

/// A fixed-bucket (powers of two) histogram of `u64` observations —
/// deterministic to merge and cheap to update, no quantile estimation
/// heuristics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Minimum observation (0 when empty).
    pub min: u64,
    /// Maximum observation.
    pub max: u64,
    /// `buckets[i]` counts observations with `bit_length == i`.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        self.max = self.max.max(v);
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// Counters, gauges and histograms keyed by static names. Keys are
/// `&'static str` so the hot-path update is a `BTreeMap` probe with no
/// allocation; `BTreeMap` keeps every report iteration sorted and
/// therefore byte-stable.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// Adds `n` to counter `name`.
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge(&mut self, name: &'static str, v: u64) {
        self.gauges.insert(name, v);
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().observe(v);
    }

    /// Folds `other` into `self` (counters add, gauges take `other`'s
    /// value, histograms merge).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k, *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Everything one trial collected.
#[derive(Debug, Clone, Default)]
pub struct TrialTelemetry {
    /// Trace events in emission order.
    pub events: Vec<TraceEvent>,
    /// The trial's metric registry.
    pub metrics: Metrics,
}

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_BATCH: AtomicU64 = AtomicU64::new(0);

/// Batch labels and per-(batch, trial) collectors, keyed so that sorted
/// iteration reproduces submission order.
struct Registry {
    labels: BTreeMap<u64, String>,
    slots: BTreeMap<(u64, u64), TrialTelemetry>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

thread_local! {
    static ACTIVE: RefCell<Option<TrialTelemetry>> = const { RefCell::new(None) };
    static SIM_NOW: Cell<u64> = const { Cell::new(0) };
}

/// Turns trace-event collection on or off globally (off by default).
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Turns metric collection on or off globally (off by default).
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

/// `true` when trace events are being collected.
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// `true` when metrics are being collected.
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

fn enabled() -> bool {
    trace_enabled() || metrics_enabled()
}

/// Publishes the virtual clock; the simulator calls this as it advances
/// so emission sites don't need to thread `now` through every layer.
#[inline]
pub fn set_sim_now(ns: u64) {
    SIM_NOW.with(|c| c.set(ns));
}

/// The last published virtual time on this thread.
#[inline]
pub fn sim_now() -> u64 {
    SIM_NOW.with(|c| c.get())
}

/// Opens a new batch (one experiment phase / one `pool::run_indexed`
/// call) and returns its id. Call from the main thread, in program
/// order — the id is the primary sort key of the trace output.
pub fn open_batch(label: &str) -> u64 {
    let id = NEXT_BATCH.fetch_add(1, Ordering::Relaxed);
    if enabled() {
        let mut reg = REGISTRY.lock().expect("telemetry registry poisoned");
        reg.get_or_insert_with(|| Registry {
            labels: BTreeMap::new(),
            slots: BTreeMap::new(),
        })
        .labels
        .insert(id, label.to_string());
    }
    id
}

/// Scopes a trial collector to the current closure: construction
/// installs a fresh thread-local collector (when collection is enabled),
/// drop moves whatever was collected into the registry under
/// `(batch, trial)`. A disabled slot is a no-op on both ends.
pub struct TrialSlot {
    batch: u64,
    trial: u64,
    active: bool,
}

/// Installs a trial collector for the rest of the enclosing scope.
pub fn trial_slot(batch: u64, trial: u64) -> TrialSlot {
    let active = enabled();
    if active {
        ACTIVE.with(|a| *a.borrow_mut() = Some(TrialTelemetry::default()));
        set_sim_now(0);
    }
    TrialSlot {
        batch,
        trial,
        active,
    }
}

impl Drop for TrialSlot {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let collected = ACTIVE.with(|a| a.borrow_mut().take());
        if let Some(t) = collected {
            let mut reg = REGISTRY.lock().expect("telemetry registry poisoned");
            reg.get_or_insert_with(|| Registry {
                labels: BTreeMap::new(),
                slots: BTreeMap::new(),
            })
            .slots
            .insert((self.batch, self.trial), t);
        }
    }
}

/// Emits a trace event. `build` runs only when a collector is installed
/// *and* tracing is enabled, so disabled runs pay one thread-local read.
/// The timestamp is the last [`set_sim_now`] value on this thread.
#[inline]
pub fn emit(component: &'static str, kind: &'static str, build: impl FnOnce(&mut TraceEvent)) {
    if !trace_enabled() {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().as_mut() {
            let mut ev = TraceEvent {
                t_ns: sim_now(),
                component,
                kind,
                stream: None,
                seq: None,
                fields: Vec::new(),
            };
            build(&mut ev);
            t.events.push(ev);
        }
    });
}

/// Adds `n` to the active trial's counter `name` (no-op when inactive).
#[inline]
pub fn count(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().as_mut() {
            t.metrics.count(name, n);
        }
    });
}

/// Sets the active trial's gauge `name` to `v` (no-op when inactive).
#[inline]
pub fn gauge(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().as_mut() {
            t.metrics.gauge(name, v);
        }
    });
}

/// Records `v` into the active trial's histogram `name` (no-op when
/// inactive).
#[inline]
pub fn observe(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().as_mut() {
            t.metrics.observe(name, v);
        }
    });
}

/// A sim-time span: captures [`sim_now`] at creation and, on drop,
/// records the elapsed virtual time into histogram `name` and counter
/// `name` (suffix-free). Wall clocks never enter the measurement.
pub struct Span {
    name: &'static str,
    start_ns: u64,
}

/// Opens a sim-time span ending (and recording) when the guard drops.
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start_ns: sim_now(),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        observe(self.name, sim_now().saturating_sub(self.start_ns));
    }
}

/// One drained registry slot.
pub struct SlotRecord {
    /// The batch label given to [`open_batch`].
    pub label: String,
    /// The trial (submission) index within the batch.
    pub trial: u64,
    /// What the trial collected.
    pub telemetry: TrialTelemetry,
}

/// Drains every collected slot, sorted by `(batch, trial)` — i.e. in
/// submission order. Returns an empty vector when nothing was collected.
pub fn drain_slots() -> Vec<SlotRecord> {
    let mut reg = REGISTRY.lock().expect("telemetry registry poisoned");
    let Some(reg) = reg.take() else {
        return Vec::new();
    };
    reg.slots
        .into_iter()
        .map(|((batch, trial), telemetry)| SlotRecord {
            label: reg
                .labels
                .get(&batch)
                .cloned()
                .unwrap_or_else(|| format!("batch-{batch}")),
            trial,
            telemetry,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use std::sync::{Mutex as TestMutex, MutexGuard};

    // The enable flags and registry are process-global; serialize the
    // tests that flip them so `cargo test`'s parallel runner can't
    // interleave two collection windows.
    static TEST_LOCK: TestMutex<()> = TestMutex::new(());

    fn locked() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn reset() {
        set_trace_enabled(false);
        set_metrics_enabled(false);
        drain_slots();
        ACTIVE.with(|a| *a.borrow_mut() = None);
    }

    #[test]
    fn disabled_by_default_everything_is_a_noop() {
        let _g = locked();
        reset();
        emit("tcp", "rto", |_| panic!("build closure must not run"));
        count("tcp.rto", 1);
        observe("span", 10);
        let batch = open_batch("noop");
        {
            let _slot = trial_slot(batch, 0);
            emit("tcp", "rto", |_| panic!("still disabled"));
        }
        assert!(drain_slots().is_empty());
    }

    #[test]
    fn events_and_metrics_land_in_the_active_slot() {
        let _g = locked();
        reset();
        set_trace_enabled(true);
        set_metrics_enabled(true);
        let batch = open_batch("exp/phase=1");
        {
            let _slot = trial_slot(batch, 3);
            set_sim_now(1_500);
            emit("tcp", "rto", |ev| {
                ev.seq = Some(42);
                ev.fields.push(("backoffs", Value::U64(2)));
            });
            count("tcp.rto", 1);
            gauge("tcp.cwnd", 2_920);
            observe("h2.serve_ns", 7);
        }
        reset();
        // Drained after reset — the slot was recorded while enabled.
        set_trace_enabled(true);
        let batch2 = open_batch("exp/phase=2");
        {
            let _slot = trial_slot(batch2, 0);
        }
        let slots = drain_slots();
        // Only the second window survives the drain inside reset();
        // its slot is empty but present.
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].label, "exp/phase=2");
        reset();
    }

    #[test]
    fn slot_contents_round_trip() {
        let _g = locked();
        reset();
        set_trace_enabled(true);
        set_metrics_enabled(true);
        let batch = open_batch("roundtrip");
        {
            let _slot = trial_slot(batch, 7);
            set_sim_now(2_000);
            emit("h2", "flow_blocked", |ev| {
                ev.stream = Some(5);
                ev.fields.push(("window", Value::U64(0)));
            });
            count("h2.window_blocked", 2);
        }
        let slots = drain_slots();
        assert_eq!(slots.len(), 1);
        let s = &slots[0];
        assert_eq!(s.trial, 7);
        assert_eq!(s.telemetry.events.len(), 1);
        let ev = &s.telemetry.events[0];
        assert_eq!(ev.t_ns, 2_000);
        assert_eq!(ev.component, "h2");
        assert_eq!(ev.stream, Some(5));
        assert_eq!(s.telemetry.metrics.counters["h2.window_blocked"], 2);
        reset();
    }

    #[test]
    fn drain_is_sorted_by_batch_then_trial() {
        let _g = locked();
        reset();
        set_trace_enabled(true);
        let b0 = open_batch("first");
        let b1 = open_batch("second");
        // Fill out of submission order, as racing workers would.
        for (batch, trial) in [(b1, 1u64), (b0, 2), (b1, 0), (b0, 0), (b0, 1)] {
            let _slot = trial_slot(batch, trial);
            emit("x", "y", |_| {});
        }
        let slots = drain_slots();
        let order: Vec<(String, u64)> = slots.into_iter().map(|s| (s.label, s.trial)).collect();
        assert_eq!(
            order,
            vec![
                ("first".to_string(), 0),
                ("first".to_string(), 1),
                ("first".to_string(), 2),
                ("second".to_string(), 0),
                ("second".to_string(), 1),
            ]
        );
        reset();
    }

    #[test]
    fn span_records_sim_time_not_wall_time() {
        let _g = locked();
        reset();
        set_metrics_enabled(true);
        let batch = open_batch("span");
        {
            let _slot = trial_slot(batch, 0);
            set_sim_now(1_000);
            {
                let _sp = span("trial.sim_ns");
                // Virtual clock advances 500 ns; wall time is irrelevant.
                set_sim_now(1_500);
            }
        }
        let slots = drain_slots();
        let h = &slots[0].telemetry.metrics.histograms["trial.sim_ns"];
        assert_eq!((h.count, h.sum, h.min, h.max), (1, 500, 500, 500));
        reset();
    }

    #[test]
    fn histogram_observe_and_merge() {
        let mut a = Histogram::default();
        a.observe(0);
        a.observe(7);
        a.observe(1 << 20);
        let mut b = Histogram::default();
        b.observe(3);
        b.merge(&a);
        assert_eq!(b.count, 4);
        assert_eq!(b.sum, 3 + 7 + (1 << 20));
        assert_eq!(b.min, 0);
        assert_eq!(b.max, 1 << 20);
        assert_eq!(b.buckets[0], 1); // the zero observation
        assert_eq!(b.buckets[2], 1); // 3
        assert_eq!(b.buckets[3], 1); // 7
        assert_eq!(b.buckets[21], 1); // 2^20
        assert_eq!(b.mean(), Some((3.0 + 7.0 + (1u64 << 20) as f64) / 4.0));
        assert_eq!(Histogram::default().mean(), None);
    }

    #[test]
    fn metrics_merge_adds_counters_and_merges_histograms() {
        let mut a = Metrics::default();
        a.count("x", 2);
        a.gauge("g", 1);
        a.observe("h", 10);
        let mut b = Metrics::default();
        b.count("x", 3);
        b.count("y", 1);
        b.gauge("g", 9);
        b.observe("h", 20);
        a.merge(&b);
        assert_eq!(a.counters["x"], 5);
        assert_eq!(a.counters["y"], 1);
        assert_eq!(a.gauges["g"], 9);
        assert_eq!(a.histograms["h"].count, 2);
        assert!(!a.is_empty());
        assert!(Metrics::default().is_empty());
    }

    #[test]
    fn jsonl_line_parses_with_the_in_tree_parser() {
        let ev = TraceEvent {
            t_ns: 123_456,
            component: "netsim",
            kind: "drop_loss",
            stream: None,
            seq: Some(99),
            fields: vec![("link", Value::U64(2)), ("policy", Value::Bool(false))],
        };
        let line = ev.to_json_line("robustness/intensity=0.8", 4);
        let parsed = Json::parse(&line).expect("line parses");
        let Json::Obj(fields) = parsed else {
            panic!("not an object")
        };
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
        assert_eq!(
            get("batch"),
            Some(Json::Str("robustness/intensity=0.8".to_string()))
        );
        assert_eq!(get("trial"), Some(Json::UInt(4)));
        assert_eq!(get("seq"), Some(Json::UInt(99)));
        assert_eq!(get("component"), Some(Json::Str("netsim".to_string())));
        assert!(get("stream").is_none(), "absent ids are omitted");
    }
}
