//! A deterministic parallel work pool for independent, seed-keyed jobs.
//!
//! Experiment trials are embarrassingly parallel: each one is a pure
//! function of its `(seed, options)` input, owns every piece of mutable
//! state it touches, and never communicates with its siblings. The pool
//! fans such jobs across `std::thread::scope` workers and hands the
//! results back **in submission order**, so any aggregate a caller folds
//! over them — counters, running means, serialized JSON — is
//! byte-identical to what the sequential loop produced, at any job
//! count.
//!
//! Determinism argument: workers race only over *which* index they pull
//! next (a single atomic counter); the job body sees nothing but its own
//! index, and every result lands in the slot named by that index. The
//! fold order over slots is `0..n` regardless of completion order, so
//! scheduling nondeterminism cannot leak into any output.
//!
//! `jobs <= 1` (after resolving `0` to the host's parallelism) takes the
//! plain sequential path — no threads are spawned at all — which is the
//! `--jobs 1` legacy escape hatch the experiment binaries expose.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The host's available parallelism (`--jobs 0`/default resolves to
/// this). Falls back to 1 when the platform cannot report it.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a requested job count: `0` means "all cores".
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        available_jobs()
    } else {
        requested
    }
}

/// Runs `f(0), f(1), …, f(n-1)` across up to `jobs` worker threads and
/// returns the results indexed by input — element `i` of the returned
/// vector is exactly `f(i)`, as if the jobs had run sequentially.
///
/// `jobs == 0` uses all cores; `jobs == 1` (or `n <= 1`) runs inline on
/// the calling thread without spawning. Panics in a job propagate to the
/// caller when its worker thread joins.
pub fn run_indexed<R, F>(jobs: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let jobs = resolve_jobs(jobs).min(n.max(1));
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Maps `f` over `items` across up to `jobs` worker threads, returning
/// the results in the items' original order (see [`run_indexed`]).
pub fn map_ordered<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    run_indexed(jobs, inputs.len(), |i| {
        let item = inputs[i]
            .lock()
            .expect("input slot poisoned")
            .take()
            .expect("each input consumed once");
        f(item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        for jobs in [1, 2, 4, 7] {
            let out = run_indexed(jobs, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_sequential_for_seeded_work() {
        // A job body shaped like a trial: pure function of the index.
        let work = |i: usize| {
            let mut acc = i as u64;
            for _ in 0..1_000 {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            }
            acc
        };
        let sequential = run_indexed(1, 64, work);
        for jobs in [2, 3, 8] {
            assert_eq!(run_indexed(jobs, 64, work), sequential);
        }
    }

    #[test]
    fn zero_jobs_resolves_to_all_cores() {
        assert_eq!(resolve_jobs(0), available_jobs());
        assert_eq!(resolve_jobs(3), 3);
        // Still produces correct ordered output.
        let out = run_indexed(0, 10, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<usize> = run_indexed(4, 0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(run_indexed(4, 1, |i| i), vec![0]);
    }

    #[test]
    fn map_ordered_consumes_items_by_value() {
        let items: Vec<String> = (0..20).map(|i| format!("s{i}")).collect();
        let expect: Vec<String> = items.iter().map(|s| s.to_uppercase()).collect();
        assert_eq!(map_ordered(4, items, |s| s.to_uppercase()), expect);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let out = run_indexed(64, 3, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn zero_trials_never_calls_the_job_body() {
        // trials == 0 must return immediately without invoking f, at
        // any job count (including "all cores").
        for jobs in [0, 1, 4, 64] {
            let empty: Vec<u64> = run_indexed(jobs, 0, |_| panic!("job body must not run"));
            assert!(empty.is_empty(), "jobs={jobs}");
        }
        let none: Vec<u64> = map_ordered(8, Vec::<u64>::new(), |_| panic!("no items"));
        assert!(none.is_empty());
    }

    #[test]
    fn jobs_exceeding_trials_still_runs_each_exactly_once() {
        // With far more workers than items, every index must run exactly
        // once and land in its own slot — excess workers exit idle.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let out = run_indexed(64, 5, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i * 7
        });
        assert_eq!(out, vec![0, 7, 14, 21, 28]);
        assert_eq!(calls.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn map_ordered_with_more_jobs_than_items() {
        let out = map_ordered(32, vec![1u64, 2, 3], |v| v * v);
        assert_eq!(out, vec![1, 4, 9]);
    }
}
