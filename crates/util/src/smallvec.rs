//! An inline-capacity vector for the simulator's packet hot path.
//!
//! Almost every QUIC-lite datagram carries one frame (a STREAM chunk, a
//! CRYPTO chunk or an ACK) and the largest control volley carries two, so
//! a `Vec` per datagram is a heap allocation spent on a payload that fits
//! in two machine words. [`SmallVec<T, N>`] stores up to `N` elements
//! inline and spills to a heap `Vec` only past that — in steady state the
//! packet path never spills, which is what the allocation-audit gate
//! (`h2priv_util::alloc`) pins.
//!
//! Only the surface the workspace uses is provided: `push`, iteration,
//! `Deref` to a slice, `clear`, `FromIterator`/`Extend`, and a consuming
//! iterator.

use std::fmt;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};

/// A vector holding up to `N` elements inline before spilling to the
/// heap.
pub enum SmallVec<T, const N: usize> {
    /// Elements live in the inline buffer; the first `len` are
    /// initialized.
    Inline {
        /// Number of initialized elements.
        len: usize,
        /// Inline storage.
        buf: [MaybeUninit<T>; N],
    },
    /// Spilled to a heap vector (len > N at some point).
    Heap(Vec<T>),
}

impl<T, const N: usize> SmallVec<T, N> {
    /// An empty vector (no allocation).
    pub fn new() -> Self {
        SmallVec::Inline {
            len: 0,
            // SAFETY: an array of `MaybeUninit` needs no initialization.
            buf: unsafe { MaybeUninit::uninit().assume_init() },
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            SmallVec::Inline { len, .. } => *len,
            SmallVec::Heap(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` while elements still live in the inline buffer.
    pub fn is_inline(&self) -> bool {
        matches!(self, SmallVec::Inline { .. })
    }

    /// Appends an element, spilling to the heap on overflow.
    pub fn push(&mut self, value: T) {
        match self {
            SmallVec::Inline { len, buf } => {
                if *len < N {
                    buf[*len].write(value);
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2);
                    let n = *len;
                    // Zero `len` before the variant switch: assigning to
                    // `*self` drops the old Inline value, and its Drop
                    // must not re-drop the elements being moved out.
                    *len = 0;
                    for slot in buf.iter_mut().take(n) {
                        // SAFETY: the first `n` slots were initialized
                        // and `len` is already zeroed (no double drop).
                        v.push(unsafe { slot.assume_init_read() });
                    }
                    v.push(value);
                    *self = SmallVec::Heap(v);
                }
            }
            SmallVec::Heap(v) => v.push(value),
        }
    }

    /// Drops all elements. Heap storage (if any) is retained for reuse.
    pub fn clear(&mut self) {
        match self {
            SmallVec::Inline { len, buf } => {
                let n = *len;
                *len = 0;
                for slot in buf.iter_mut().take(n) {
                    // SAFETY: the first `n` slots were initialized and
                    // `len` is already zeroed, so no double drop.
                    unsafe { slot.assume_init_drop() };
                }
            }
            SmallVec::Heap(v) => v.clear(),
        }
    }

    fn as_slice(&self) -> &[T] {
        match self {
            SmallVec::Inline { len, buf } => {
                // SAFETY: the first `len` slots are initialized.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<T>(), *len) }
            }
            SmallVec::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            SmallVec::Inline { len, buf } => {
                // SAFETY: the first `len` slots are initialized.
                unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<T>(), *len) }
            }
            SmallVec::Heap(v) => v,
        }
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<T, const N: usize> Drop for SmallVec<T, N> {
    fn drop(&mut self) {
        self.clear();
    }
}

impl<T, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Clone, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> Self {
        self.iter().cloned().collect()
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: PartialEq, const N: usize> PartialEq<Vec<T>> for SmallVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq, const N: usize> PartialEq<[T]> for SmallVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = SmallVec::new();
        for item in iter {
            out.push(item);
        }
        out
    }
}

impl<T, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T, const N: usize> From<Vec<T>> for SmallVec<T, N> {
    fn from(v: Vec<T>) -> Self {
        SmallVec::Heap(v)
    }
}

/// Consuming iterator over a [`SmallVec`].
pub struct IntoIter<T, const N: usize> {
    inner: SmallVec<T, N>,
    at: usize,
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match &mut self.inner {
            SmallVec::Inline { len, buf } => {
                if self.at < *len {
                    let i = self.at;
                    self.at += 1;
                    // SAFETY: slot `i` is initialized and `at` advances
                    // past it, so Drop (which only drops `at..len`)
                    // cannot double-drop it.
                    Some(unsafe { buf[i].assume_init_read() })
                } else {
                    None
                }
            }
            SmallVec::Heap(v) => {
                if self.at < v.len() {
                    let i = self.at;
                    self.at += 1;
                    // SAFETY: element `i` is moved out exactly once; the
                    // Vec's length is truncated in Drop before the Vec
                    // frees its storage.
                    Some(unsafe { std::ptr::read(v.as_ptr().add(i)) })
                } else {
                    None
                }
            }
        }
    }
}

impl<T, const N: usize> Drop for IntoIter<T, N> {
    fn drop(&mut self) {
        match &mut self.inner {
            SmallVec::Inline { len, buf } => {
                let n = *len;
                *len = 0;
                for slot in buf.iter_mut().take(n).skip(self.at) {
                    // SAFETY: slots `at..n` are initialized and were not
                    // yielded; `len` is zeroed so SmallVec::drop is a
                    // no-op afterwards.
                    unsafe { slot.assume_init_drop() };
                }
            }
            SmallVec::Heap(v) => {
                let n = v.len();
                // SAFETY: elements `..at` were moved out by `next`;
                // dropping `at..n` in place then forgetting them via
                // set_len(0) leaves the Vec free to release storage.
                unsafe {
                    let tail =
                        std::slice::from_raw_parts_mut(v.as_mut_ptr().add(self.at), n - self.at);
                    v.set_len(0);
                    std::ptr::drop_in_place(tail);
                }
            }
        }
    }
}

impl<T, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;

    fn into_iter(self) -> IntoIter<T, N> {
        IntoIter { inner: self, at: 0 }
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> std::slice::Iter<'a, T> {
        self.as_slice().iter()
    }
}

/// `smallvec![a, b, c]` — the `vec![]` idiom for [`SmallVec`].
#[macro_export]
macro_rules! smallvec {
    ($($item:expr),* $(,)?) => {{
        let mut out = $crate::smallvec::SmallVec::new();
        $(out.push($item);)*
        out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn inline_until_capacity_then_spills() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        assert!(v.is_empty() && v.is_inline());
        v.push(1);
        v.push(2);
        assert!(v.is_inline());
        assert_eq!(&v[..], &[1, 2]);
        v.push(3);
        assert!(!v.is_inline());
        assert_eq!(&v[..], &[1, 2, 3]);
    }

    #[test]
    fn into_iter_yields_all_elements() {
        let v: SmallVec<u32, 2> = [1, 2].into_iter().collect();
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![1, 2]);
        let v: SmallVec<u32, 2> = [1, 2, 3, 4].into_iter().collect();
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn drops_every_element_exactly_once() {
        let rc = Rc::new(());
        // Inline drop, spilled drop, and partially-consumed IntoIter drop.
        {
            let mut v: SmallVec<Rc<()>, 2> = SmallVec::new();
            v.push(rc.clone());
            v.push(rc.clone());
        }
        assert_eq!(Rc::strong_count(&rc), 1);
        {
            let mut v: SmallVec<Rc<()>, 2> = SmallVec::new();
            for _ in 0..5 {
                v.push(rc.clone());
            }
        }
        assert_eq!(Rc::strong_count(&rc), 1);
        {
            let mut v: SmallVec<Rc<()>, 2> = SmallVec::new();
            for _ in 0..5 {
                v.push(rc.clone());
            }
            let mut it = v.into_iter();
            let _first = it.next();
            drop(it);
        }
        assert_eq!(Rc::strong_count(&rc), 1);
        {
            let mut v: SmallVec<Rc<()>, 4> = SmallVec::new();
            v.push(rc.clone());
            v.push(rc.clone());
            let mut it = v.into_iter();
            let _first = it.next();
            drop(it);
        }
        assert_eq!(Rc::strong_count(&rc), 1);
    }

    #[test]
    fn clear_resets_and_reuses() {
        let mut v: SmallVec<u32, 2> = smallvec![1, 2, 3];
        v.clear();
        assert!(v.is_empty());
        v.push(9);
        assert_eq!(&v[..], &[9]);
    }

    #[test]
    fn equality_and_clone() {
        let a: SmallVec<u32, 2> = smallvec![1, 2];
        let b = a.clone();
        assert_eq!(a, b);
        let c: SmallVec<u32, 2> = smallvec![1, 2, 3];
        assert_ne!(a, c);
        assert_eq!(c.clone(), c);
    }

    #[test]
    fn from_vec_adopts_heap_storage() {
        let v: SmallVec<u32, 2> = vec![5, 6, 7].into();
        assert_eq!(&v[..], &[5, 6, 7]);
    }

    #[test]
    fn mutable_slice_access() {
        let mut v: SmallVec<u32, 2> = smallvec![1, 2];
        v[0] = 10;
        assert_eq!(&v[..], &[10, 2]);
    }
}
