//! Byte buffers: a cheaply-cloneable immutable [`Bytes`] and a growable
//! [`BytesMut`], replacing the `bytes` crate with `Arc<[u8]>`/`Vec<u8>`
//! under the hood. Only the surface this workspace uses is provided:
//! big-endian `put_*` writers, `freeze`, `slice`, and `split_to`.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// The backing storage of a [`Bytes`]: either a shared heap allocation
/// or a borrowed `'static` slice (no allocation, no copy).
///
/// `Shared` wraps `Arc<Vec<u8>>` rather than `Arc<[u8]>` so that
/// `Bytes::from(vec)` / `BytesMut::freeze` adopt the vector's existing
/// allocation instead of copying it into a fresh slice allocation —
/// freezing is the hottest constructor on the simulator's packet path.
#[derive(Clone)]
enum Repr {
    Shared(Arc<Vec<u8>>),
    Static(&'static [u8]),
}

impl Repr {
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Shared(data) => data,
            Repr::Static(data) => data,
        }
    }
}

impl Default for Repr {
    fn default() -> Repr {
        Repr::Static(&[])
    }
}

/// An immutable, reference-counted byte buffer. Clones and slices share
/// the same allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer borrowing nothing from `data` — the bytes are copied.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Wraps a static slice. The data is borrowed for the program's
    /// lifetime — never copied and never reference-counted; clones and
    /// slices point at the original storage.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: Repr::Static(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Removes and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Recovers the backing `Vec` when this handle is the sole owner of a
    /// shared allocation, for buffer pooling. Returns `None` (dropping
    /// the handle) when other clones or slices are still alive, or when
    /// the buffer borrows static storage. The returned `Vec` is the whole
    /// original allocation regardless of how this handle was sliced;
    /// callers clear it before reuse.
    pub fn try_reclaim(self) -> Option<Vec<u8>> {
        match self.data {
            Repr::Shared(arc) => Arc::try_unwrap(arc).ok(),
            Repr::Static(_) => None,
        }
    }
}

/// A bounded pool of uniquely-owned packet buffers.
///
/// `Bytes::from(vec)` costs one `Arc` control-block allocation even when
/// the `Vec` itself is recycled; the pool therefore parks the whole
/// `Arc<Vec<u8>>` — control block and storage together — so a pooled
/// [`acquire`](BytesPool::acquire)/[`freeze`](PooledBuf::freeze) round
/// trip performs **zero** allocations once warm. [`reclaim`]
/// (BytesPool::reclaim) accepts a buffer back only when the handle is
/// the allocation's sole owner (no live clones or slices), so a pooled
/// buffer can never be observed mutating under a reader.
#[derive(Debug)]
pub struct BytesPool {
    free: Vec<Arc<Vec<u8>>>,
    max_buffers: usize,
    buf_capacity: usize,
}

impl BytesPool {
    /// A pool keeping at most `max_buffers` buffers, each created with
    /// `buf_capacity` bytes of capacity.
    pub fn new(max_buffers: usize, buf_capacity: usize) -> BytesPool {
        BytesPool {
            free: Vec::new(),
            max_buffers,
            buf_capacity,
        }
    }

    /// Takes a cleared buffer from the pool, allocating a fresh one only
    /// when the pool is empty.
    pub fn acquire(&mut self) -> PooledBuf {
        let mut arc = match self.free.pop() {
            Some(arc) => arc,
            None => Arc::new(Vec::with_capacity(self.buf_capacity)),
        };
        Arc::get_mut(&mut arc)
            .expect("pooled buffer is uniquely owned")
            .clear();
        PooledBuf { arc }
    }

    /// Returns a buffer to the pool if `buf` is the sole owner of its
    /// allocation; otherwise the handle is simply dropped.
    pub fn reclaim(&mut self, buf: Bytes) {
        if self.free.len() >= self.max_buffers {
            return;
        }
        if let Repr::Shared(mut arc) = buf.data {
            if Arc::get_mut(&mut arc).is_some() {
                self.free.push(arc);
            }
        }
    }

    /// Number of parked buffers.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Whether the pool holds no parked buffers.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

/// A uniquely-owned buffer checked out of a [`BytesPool`]: write into
/// [`buf`](PooledBuf::buf), then [`freeze`](PooledBuf::freeze) into an
/// immutable [`Bytes`] without copying or allocating.
pub struct PooledBuf {
    arc: Arc<Vec<u8>>,
}

impl PooledBuf {
    /// The writable storage (starts empty).
    pub fn buf(&mut self) -> &mut Vec<u8> {
        Arc::get_mut(&mut self.arc).expect("pooled buffer is uniquely owned")
    }

    /// Freezes into an immutable [`Bytes`] reusing this allocation.
    pub fn freeze(self) -> Bytes {
        let end = self.arc.len();
        Bytes {
            data: Repr::Shared(self.arc),
            start: 0,
            end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Repr::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer with big-endian `put_*` writers.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.vec.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a slice.
    pub fn put_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }

    /// Appends a slice (`Vec` idiom).
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }

    /// Appends `n` zero bytes in one resize (no per-byte pushes).
    pub fn put_zeros(&mut self, n: usize) {
        let len = self.vec.len();
        self.vec.resize(len + n, 0);
    }

    /// Removes and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.vec.len(), "split_to out of bounds");
        let rest = self.vec.split_off(at);
        BytesMut {
            vec: std::mem::replace(&mut self.vec, rest),
        }
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_data() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut m = s.clone();
        let head = m.split_to(2);
        assert_eq!(&head[..], &[2, 3]);
        assert_eq!(&m[..], &[4]);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn open_ended_slices() {
        let b = Bytes::from(vec![9, 8, 7]);
        assert_eq!(&b.slice(..)[..], &[9, 8, 7]);
        assert_eq!(&b.slice(1..)[..], &[8, 7]);
        assert_eq!(&b.slice(..=1)[..], &[9, 8]);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1]);
        let _ = b.slice(0..2);
    }

    #[test]
    fn bytes_mut_put_writers_are_big_endian() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(0x01);
        m.put_u16(0x0203);
        m.put_u32(0x0405_0607);
        m.put_u64(0x1122_3344_5566_7788);
        m.put_slice(&[0xff]);
        let b = m.freeze();
        assert_eq!(
            &b[..],
            &[
                0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                0x88, 0xff
            ]
        );
    }

    #[test]
    fn bytes_mut_split_to() {
        let mut m = BytesMut::new();
        m.put_slice(b"hello world");
        let head = m.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&m[..], b" world");
    }

    #[test]
    fn from_static_borrows_without_copying() {
        static DATA: [u8; 5] = [10, 20, 30, 40, 50];
        let b = Bytes::from_static(&DATA);
        // Zero-copy: the buffer points at the static storage itself.
        assert!(std::ptr::eq(b.as_ref().as_ptr(), DATA.as_ptr()));
        // Clones and slices keep pointing at it too.
        let c = b.clone();
        assert!(std::ptr::eq(c.as_ref().as_ptr(), DATA.as_ptr()));
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[20, 30, 40]);
        assert!(std::ptr::eq(
            s.as_ref().as_ptr(),
            DATA.as_ptr().wrapping_add(1)
        ));
    }

    #[test]
    fn freeze_adopts_the_vec_allocation() {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(b"payload bytes");
        let p = v.as_ptr();
        let b = Bytes::from(v);
        // Zero-copy: the frozen buffer points at the Vec's storage.
        assert!(std::ptr::eq(b.as_ref().as_ptr(), p));
        let mut m = BytesMut::with_capacity(32);
        m.put_slice(b"abc");
        let p = m.as_ref().as_ptr();
        let b = m.freeze();
        assert!(std::ptr::eq(b.as_ref().as_ptr(), p));
    }

    #[test]
    fn try_reclaim_recovers_sole_ownership_only() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert!(b.try_reclaim().is_none(), "clone still alive");
        let v = c.try_reclaim().expect("sole owner");
        assert_eq!(v, vec![1, 2, 3]);
        // A slice keeps the whole allocation alive and reclaims it whole.
        let s = Bytes::from(vec![9, 8, 7]).slice(1..2);
        assert_eq!(
            s.try_reclaim().expect("sole owner via slice"),
            vec![9, 8, 7]
        );
        // Static buffers are never reclaimed.
        assert!(Bytes::from_static(b"abc").try_reclaim().is_none());
    }

    #[test]
    fn pool_round_trip_reuses_the_allocation() {
        let mut pool = BytesPool::new(4, 64);
        let mut buf = pool.acquire();
        buf.buf().extend_from_slice(b"first packet");
        let frozen = buf.freeze();
        let p = frozen.as_ref().as_ptr();
        assert_eq!(&frozen[..], b"first packet");
        pool.reclaim(frozen);
        assert_eq!(pool.len(), 1);
        let mut buf = pool.acquire();
        assert!(buf.buf().is_empty());
        buf.buf().extend_from_slice(b"xy");
        let again = buf.freeze();
        // Same storage, old contents cleared.
        assert!(std::ptr::eq(again.as_ref().as_ptr(), p));
        assert_eq!(&again[..], b"xy");
    }

    #[test]
    fn pool_refuses_shared_and_overflowing_buffers() {
        let mut pool = BytesPool::new(1, 16);
        let a = pool.acquire().freeze();
        let a_clone = a.clone();
        pool.reclaim(a); // clone alive -> dropped, not pooled
        assert!(pool.is_empty());
        drop(a_clone);
        let b = pool.acquire().freeze();
        let c = pool.acquire().freeze();
        pool.reclaim(b);
        pool.reclaim(c); // over capacity -> dropped
        assert_eq!(pool.len(), 1);
        // Static buffers are never pooled.
        pool.reclaim(Bytes::from_static(b"zz"));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn put_zeros_extends_with_zero_bytes() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_zeros(3);
        assert_eq!(&m[..], &[7, 0, 0, 0]);
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(b, vec![1, 2]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2]));
        assert!(b == [1u8, 2][..]);
    }
}
