//! Byte buffers: a cheaply-cloneable immutable [`Bytes`] and a growable
//! [`BytesMut`], replacing the `bytes` crate with `Arc<[u8]>`/`Vec<u8>`
//! under the hood. Only the surface this workspace uses is provided:
//! big-endian `put_*` writers, `freeze`, `slice`, and `split_to`.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// The backing storage of a [`Bytes`]: either a shared heap allocation
/// or a borrowed `'static` slice (no allocation, no copy).
///
/// `Shared` wraps `Arc<Vec<u8>>` rather than `Arc<[u8]>` so that
/// `Bytes::from(vec)` / `BytesMut::freeze` adopt the vector's existing
/// allocation instead of copying it into a fresh slice allocation —
/// freezing is the hottest constructor on the simulator's packet path.
#[derive(Clone)]
enum Repr {
    Shared(Arc<Vec<u8>>),
    Static(&'static [u8]),
}

impl Repr {
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Shared(data) => data,
            Repr::Static(data) => data,
        }
    }
}

impl Default for Repr {
    fn default() -> Repr {
        Repr::Static(&[])
    }
}

/// An immutable, reference-counted byte buffer. Clones and slices share
/// the same allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer borrowing nothing from `data` — the bytes are copied.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Wraps a static slice. The data is borrowed for the program's
    /// lifetime — never copied and never reference-counted; clones and
    /// slices point at the original storage.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: Repr::Static(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Removes and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Repr::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer with big-endian `put_*` writers.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.vec.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a slice.
    pub fn put_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }

    /// Appends a slice (`Vec` idiom).
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }

    /// Removes and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.vec.len(), "split_to out of bounds");
        let rest = self.vec.split_off(at);
        BytesMut {
            vec: std::mem::replace(&mut self.vec, rest),
        }
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_data() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut m = s.clone();
        let head = m.split_to(2);
        assert_eq!(&head[..], &[2, 3]);
        assert_eq!(&m[..], &[4]);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn open_ended_slices() {
        let b = Bytes::from(vec![9, 8, 7]);
        assert_eq!(&b.slice(..)[..], &[9, 8, 7]);
        assert_eq!(&b.slice(1..)[..], &[8, 7]);
        assert_eq!(&b.slice(..=1)[..], &[9, 8]);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1]);
        let _ = b.slice(0..2);
    }

    #[test]
    fn bytes_mut_put_writers_are_big_endian() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(0x01);
        m.put_u16(0x0203);
        m.put_u32(0x0405_0607);
        m.put_u64(0x1122_3344_5566_7788);
        m.put_slice(&[0xff]);
        let b = m.freeze();
        assert_eq!(
            &b[..],
            &[
                0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                0x88, 0xff
            ]
        );
    }

    #[test]
    fn bytes_mut_split_to() {
        let mut m = BytesMut::new();
        m.put_slice(b"hello world");
        let head = m.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&m[..], b" world");
    }

    #[test]
    fn from_static_borrows_without_copying() {
        static DATA: [u8; 5] = [10, 20, 30, 40, 50];
        let b = Bytes::from_static(&DATA);
        // Zero-copy: the buffer points at the static storage itself.
        assert!(std::ptr::eq(b.as_ref().as_ptr(), DATA.as_ptr()));
        // Clones and slices keep pointing at it too.
        let c = b.clone();
        assert!(std::ptr::eq(c.as_ref().as_ptr(), DATA.as_ptr()));
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[20, 30, 40]);
        assert!(std::ptr::eq(
            s.as_ref().as_ptr(),
            DATA.as_ptr().wrapping_add(1)
        ));
    }

    #[test]
    fn freeze_adopts_the_vec_allocation() {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(b"payload bytes");
        let p = v.as_ptr();
        let b = Bytes::from(v);
        // Zero-copy: the frozen buffer points at the Vec's storage.
        assert!(std::ptr::eq(b.as_ref().as_ptr(), p));
        let mut m = BytesMut::with_capacity(32);
        m.put_slice(b"abc");
        let p = m.as_ref().as_ptr();
        let b = m.freeze();
        assert!(std::ptr::eq(b.as_ref().as_ptr(), p));
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(b, vec![1, 2]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2]));
        assert!(b == [1u8, 2][..]);
    }
}
