//! Reproduction of the paper's Section V evaluation on the isidewith
//! model: runs many attacked page loads and prints a Table II-style
//! accuracy table.
//!
//! ```sh
//! cargo run --release -p h2priv-core --example isidewith_attack -- [trials]
//! ```

use h2priv_core::experiments::table2;
use h2priv_core::report::{pct, pct_opt, render_table};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    eprintln!("running {trials} attacked page loads (Table II)...");
    let cols = table2(trials, 77_000, 0);

    let rows: Vec<Vec<String>> = cols
        .iter()
        .map(|c| {
            vec![
                c.object.clone(),
                pct_opt(c.gap_prev_ms),
                pct(c.pct_single_target),
                pct(c.pct_all_targets),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "object",
                "gap to prev req (ms)",
                "success % (single target)",
                "success % (all targets)"
            ],
            &rows
        )
    );
    println!("\npaper (Table II): single-target 100% everywhere;");
    println!("all-targets: HTML 90, I1 90, I2 85, I3 81, I4 80, I5 62, I6 64, I7 78, I8 64");
}
