//! Sweep the adversary's network parameters and watch their effect on
//! HTTP/2 multiplexing — the paper's Section IV study (Table I + Fig. 5
//! + Section IV-D) in one binary.
//!
//! ```sh
//! cargo run --release -p h2priv-core --example network_sweep -- [trials]
//! ```

use h2priv_core::experiments::{fig5, section4d, table1};
use h2priv_core::report::{pct, render_table};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);

    eprintln!("jitter sweep ({trials} trials/point)...");
    let t1 = table1(trials, 10_000, 0);
    let rows: Vec<Vec<String>> = t1
        .iter()
        .map(|r| {
            vec![
                r.jitter_ms.to_string(),
                pct(r.pct_not_multiplexed),
                format!("{:.1}", r.retransmissions_avg),
                pct(r.retrans_increase_pct),
            ]
        })
        .collect();
    println!("Table I — effect of jitter:");
    println!(
        "{}",
        render_table(
            &[
                "jitter (ms)",
                "not multiplexed (%)",
                "retransmissions (avg)",
                "retrans increase (%)"
            ],
            &rows
        )
    );

    eprintln!("bandwidth sweep ({trials} trials/point)...");
    let f5 = fig5(trials, 20_000, 0);
    let rows: Vec<Vec<String>> = f5
        .iter()
        .map(|r| {
            vec![
                r.bandwidth_mbps.to_string(),
                pct(r.pct_success),
                format!("{:.1}", r.retransmissions_avg),
                pct(r.pct_broken),
            ]
        })
        .collect();
    println!("\nFig. 5 — effect of bandwidth limitation (50 ms jitter):");
    println!(
        "{}",
        render_table(
            &[
                "bandwidth (Mbps)",
                "success (%)",
                "retransmissions (avg)",
                "broken (%)"
            ],
            &rows
        )
    );

    eprintln!("targeted-drop sweep ({trials} trials/point)...");
    let dr = section4d(trials, 30_000, &[0.5, 0.8, 0.9], 0);
    let rows: Vec<Vec<String>> = dr
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.drop_rate * 100.0),
                pct(r.pct_success),
                pct(r.pct_reset_sent),
                pct(r.pct_broken),
            ]
        })
        .collect();
    println!("\nSection IV-D — targeted drops forcing stream reset:");
    println!(
        "{}",
        render_table(
            &["drop rate", "success (%)", "reset sent (%)", "broken (%)"],
            &rows
        )
    );
}
