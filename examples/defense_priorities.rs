//! Evaluate the paper's Section VII defense sketch: per-visit priority
//! (delivery-order) randomization of the emblem images.
//!
//! ```sh
//! cargo run --release -p h2priv-core --example defense_priorities -- [trials]
//! ```

use h2priv_core::defense::{evaluate_defense, evaluate_push_defense};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    eprintln!("running {trials} trials per arm...");
    let report = evaluate_defense(trials, 99_000);
    println!("priority-randomization defense vs the full Section V attack");
    println!(
        "  ranking accuracy, undefended site: {:.1}%",
        report.accuracy_undefended_pct
    );
    println!(
        "  ranking accuracy, defended site:   {:.1}% (chance = 12.5%)",
        report.accuracy_defended_pct
    );
    println!(
        "  images still identified by size:   {:.1}% (the defense hides order, not identity)",
        report.identified_defended_pct
    );

    eprintln!("running {trials} trials per arm (server push)...");
    let push = evaluate_push_defense(trials, 98_000);
    println!("\nserver-push defense (emblems pushed with the HTML, canonical order)");
    println!(
        "  ranking accuracy, plain site:  {:.1}%",
        push.accuracy_plain_pct
    );
    println!(
        "  ranking accuracy, pushed site: {:.1}% (chance = 12.5%)",
        push.accuracy_pushed_pct
    );
    println!(
        "  images still identified:       {:.1}%",
        push.identified_pushed_pct
    );
}
