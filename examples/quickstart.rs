//! Quickstart: run one attacked isidewith.com page load and print what
//! the adversary learned.
//!
//! ```sh
//! cargo run --release -p h2priv-core --example quickstart
//! ```

use h2priv_core::attack::AttackConfig;
use h2priv_core::experiment::run_isidewith_trial;

fn main() {
    let seed = 2020;

    // 1. Baseline: passive eavesdropper on an unmodified network.
    let baseline = run_isidewith_trial(seed, None);
    let html = baseline.html_outcome();
    println!("== passive eavesdropper ==");
    println!(
        "result HTML degree of multiplexing: {:.1}% (identified from trace: {})",
        html.best_degree * 100.0,
        html.identified
    );
    println!(
        "inferred party ranking: {:?}",
        baseline
            .predicted_order()
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "ground truth ranking:   {:?}",
        baseline
            .iw
            .result_order
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
    );

    // 2. The paper's active adversary: 50 ms jitter, throttle + 80% drops
    //    at the 6th GET for 6 s, then 80 ms jitter.
    let attacked = run_isidewith_trial(seed, Some(AttackConfig::full_attack()));
    let html = attacked.html_outcome();
    println!("\n== active adversary (full Section V attack) ==");
    println!("attack timeline: {:?}", attacked.result.attack.events);
    println!(
        "result HTML degree of multiplexing: {:.1}% (identified: {}, success: {})",
        html.best_degree * 100.0,
        html.identified,
        html.success
    );
    let seq_ok = attacked.sequence_success();
    println!(
        "inferred party ranking: {:?}",
        attacked
            .predicted_order()
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "ground truth ranking:   {:?}",
        attacked
            .iw
            .result_order
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "positions inferred correctly: {}/8",
        seq_ok.iter().filter(|b| **b).count()
    );
    println!(
        "retransmissions caused: {}, stream resets forced: {}",
        attacked.result.total_retransmissions(),
        attacked.result.client.resets_sent
    );
}
