//! Fault injection and graceful degradation in one tour: run the full
//! isidewith attack over a clean path, a bursty-lossy path, and a path
//! that goes dark mid-transfer, and show how every trial ends with a
//! classified outcome instead of a hang or a silent default.
//!
//! ```sh
//! cargo run --release -p h2priv-core --example robustness_faults
//! ```

use h2priv_core::experiment::{run_isidewith_trial_retrying, FaultPlan, TrialOptions};
use h2priv_core::experiments::robustness_fault_plan;
use h2priv_netsim::faults::{FaultAction, FaultConfig};
use h2priv_netsim::prelude::*;

fn run(label: &str, faults: FaultPlan) {
    let mut opts = TrialOptions::new(4242, None);
    opts.faults = faults;
    opts.fail_fast = true;
    opts.stall_window = SimDuration::from_secs(15);
    let retried = run_isidewith_trial_retrying(opts, 1);
    let r = &retried.trial.result;
    let drops: u64 = r.fault_stats.iter().map(|s| s.dropped()).sum();
    let reordered: u64 = r.fault_stats.iter().map(|s| s.reordered).sum();
    println!(
        "{label:<18} outcome={:<18} ended_at={:<12} retries={} \
         fault_drops={drops} reordered={reordered} retransmissions={}",
        r.outcome.label(),
        r.ended_at.to_string(),
        retried.retries_used(),
        r.total_retransmissions(),
    );
    for failed in &retried.failed_attempts {
        println!("{:<18} (failed attempt: {})", "", failed.label());
    }
}

fn main() {
    println!("one attacked page load per network condition, seed 4242:\n");

    run("clean path", FaultPlan::default());

    // Mild and heavy versions of the standard sweep bundle (bursty loss,
    // reordering, duplication; the heavy one adds a 400 ms flap).
    run("mild impairment", robustness_fault_plan(0.3));
    run("heavy impairment", robustness_fault_plan(1.0));

    // A path that goes down for good: the watchdog classifies the trial
    // instead of simulating out the full horizon.
    let outage = FaultConfig::none().at(SimTime::from_millis(300), FaultAction::LinkDown);
    run(
        "permanent outage",
        FaultPlan {
            client_link: Some(outage.clone()),
            server_link: Some(outage),
        },
    );

    println!("\nevery trial terminates with a classified outcome; degraded trials");
    println!("are retried once on a derived seed before being reported as failed.");
}
